type result = {
  violations : Smr_spec.violation list;
  distinct_ops_at_seq1 : int;
  messages : int;
  duration_us : int64;
  commits : int;
  trusted_ops : (string * int) list;
  detail : string;
}

let pp_result ppf r =
  Format.fprintf ppf
    "safety violations: %d; distinct ops at seq 1: %d; trusted ops: %d — %s"
    (List.length r.violations) r.distinct_ops_at_seq1
    (List.fold_left (fun acc (_, c) -> acc + c) 0 r.trusted_ops)
    r.detail

(* ----------------------------------------------------------------------- *)
(* The unattested variant: MinBFT's normal case over plain signatures.      *)
(* ----------------------------------------------------------------------- *)

type uproto =
  | Uprepare of { seq : int; request : Command.signed_request }
  | Ucommit of { seq : int; digest : int64 }
  | Ufetch
  | Usnapshot of { state : (string * string) list; upto : int }
      (* appended last: encoded protos keep their bytes.  Ufetch/Usnapshot
         are the unattested strawman of state transfer: the payload carries
         no certificate, so a joiner can only install it on faith. *)

type umsg = uproto Thc_crypto.Signature.signed

let urestart_timer_tag = 901

(* A correct replica of the unattested protocol (fixed leader 0, no view
   change — the attack only needs the normal case).  [restart_at] models a
   crash-and-restart: all state is lost and the replica re-joins by asking
   the leader for a snapshot — which, lacking any attestation, it has no
   choice but to install blindly. *)
let unattested_replica ?restart_at ~keyring ~ident ~f ~self () :
    umsg Thc_sim.Engine.behavior =
  let store = Kv_store.create () in
  let proposals : (int, Command.signed_request) Hashtbl.t = Hashtbl.create 8 in
  let votes : (int * int64, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let committed : (int, Command.signed_request) Hashtbl.t = Hashtbl.create 8 in
  let commit_sent : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let exec_upto = ref 0 in
  let awaiting = ref false in
  let rec try_execute (ctx : umsg Thc_sim.Engine.ctx) =
    if !awaiting then ()
    else
    match Hashtbl.find_opt committed (!exec_upto + 1) with
    | None -> ()
    | Some sr ->
      incr exec_upto;
      let resultv =
        Kv_store.encode_result (Kv_store.apply store (Kv_store.decode_op sr.value.op))
      in
      if Thc_obsv.Span.enabled ctx.spans then
        Thc_obsv.Span.mark ctx.spans ~client:sr.value.client ~rid:sr.value.rid
          Thc_obsv.Span.Executed ~at:(ctx.now ());
      ctx.output
        (Thc_sim.Obs.Executed { seq = !exec_upto; op = sr.value.op; result = resultv });
      try_execute ctx
  in
  let record ctx ~seq ~digest ~voter =
    let tbl =
      match Hashtbl.find_opt votes (seq, digest) with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.add votes (seq, digest) tbl;
        tbl
    in
    Hashtbl.replace tbl voter ();
    match Hashtbl.find_opt proposals seq with
    | Some sr
      when Command.digest sr.Thc_crypto.Signature.value = digest
           && Hashtbl.length tbl >= f + 1
           && not (Hashtbl.mem committed seq) ->
      Hashtbl.replace committed seq sr;
      if Thc_obsv.Span.enabled ctx.Thc_sim.Engine.spans then
        Thc_obsv.Span.mark ctx.Thc_sim.Engine.spans ~client:sr.value.client
          ~rid:sr.value.rid ~seq Thc_obsv.Span.Committed ~at:(ctx.Thc_sim.Engine.now ());
      ctx.Thc_sim.Engine.output
        (Thc_sim.Obs.Committed { view = 0; seq; op = sr.value.op });
      try_execute ctx
    | Some _ | None -> ()
  in
  {
    init =
      (fun ctx ->
        match restart_at with
        | Some delay -> ctx.set_timer ~delay ~tag:urestart_timer_tag
        | None -> ());
    on_message =
      (fun ctx ~src (w : umsg) ->
        if Thc_crypto.Signature.sealed_ok keyring w then
          match w.value with
          | Ufetch ->
            (* Only the leader serves state transfer in this strawman —
               which is exactly what hands a Byzantine leader the joiner. *)
            if self = 0 && not !awaiting then
              ctx.send src
                (Thc_crypto.Signature.seal ident
                   (Usnapshot
                      { state = Kv_store.snapshot store; upto = !exec_upto }))
          | Usnapshot { state; upto } ->
            (* Nothing certifies the payload: first answer wins, wholesale.
               This blind install is the ablation's point — compare the
               certificate/floor/quorum ladder in {!Minbft}. *)
            if !awaiting then begin
              Kv_store.reset_to store state;
              exec_upto := upto;
              awaiting := false;
              ctx.output
                (Thc_sim.Obs.Recovered { upto; exec_count = upto });
              try_execute ctx
            end
          | Uprepare { seq; request } ->
            (* Without non-equivocation all a replica can do is adopt the
               first leader proposal it sees. *)
            if
              w.signature.signer = 0
              && Command.valid keyring request
              && not (Hashtbl.mem proposals seq)
            then begin
              Hashtbl.replace proposals seq request;
              if Thc_obsv.Span.enabled ctx.spans then
                Thc_obsv.Span.mark ctx.spans ~client:request.value.client
                  ~rid:request.value.rid ~seq Thc_obsv.Span.Propose ~at:(ctx.now ());
              let digest = Command.digest request.value in
              record ctx ~seq ~digest ~voter:0;
              if self <> 0 && not (Hashtbl.mem commit_sent seq) then begin
                Hashtbl.replace commit_sent seq ();
                if Thc_obsv.Span.enabled ctx.spans then
                  Thc_obsv.Span.mark ctx.spans ~rid:request.value.rid ~seq
                    Thc_obsv.Span.Commit_send ~at:(ctx.now ());
                ctx.broadcast
                  (Thc_crypto.Signature.seal ident (Ucommit { seq; digest }));
                record ctx ~seq ~digest ~voter:self
              end
            end
          | Ucommit { seq; digest } ->
            record ctx ~seq ~digest ~voter:w.signature.signer);
    on_timer =
      (fun ctx tag ->
        if tag = urestart_timer_tag then begin
          (* Crash-and-restart: everything volatile is gone — and unlike
             the attested protocol there is no NVRAM floor to keep. *)
          Hashtbl.reset proposals;
          Hashtbl.reset votes;
          Hashtbl.reset committed;
          Hashtbl.reset commit_sent;
          Kv_store.reset_to store [];
          exec_upto := 0;
          awaiting := true;
          ctx.broadcast (Thc_crypto.Signature.seal ident Ufetch)
        end);
  }

(* The equivocating leader: proposal A to the first half, proposal B to the
   second half.  [wire_a]/[wire_b] abstract over how proposals are built so
   the identical attack runs against both protocols. *)
let split_attack (type m) ~(engine : m Thc_sim.Engine.t) ~n ~group_a ~group_b
    ~(wire_a : m) ~(wire_b : m) =
  ignore n;
  Thc_sim.Engine.mark_byzantine engine 0;
  let byz : m Thc_sim.Engine.behavior =
    {
      init =
        (fun ctx ->
          List.iter (fun dst -> ctx.send dst wire_a) group_a;
          List.iter (fun dst -> ctx.send dst wire_b) group_b);
      on_message = (fun _ ~src:_ _ -> ());
      on_timer = (fun _ _ -> ());
    }
  in
  Thc_sim.Engine.set_behavior engine 0 byz

let groups ~f =
  ( List.init f (fun i -> i + 1),  (* replicas 1..f *)
    List.init f (fun i -> i + f + 1) (* replicas f+1..2f *) )

let requests ~keyring ~client_pid =
  let ident = Thc_crypto.Keyring.secret keyring ~pid:client_pid in
  ( Command.make ~ident ~rid:0 (Kv_store.Put ("k", "A")),
    Command.make ~ident ~rid:1 (Kv_store.Put ("k", "B")) )

let distinct_at_seq1 trace ~replicas =
  List.filter_map
    (fun pid ->
      List.find_map
        (fun obs ->
          match (obs : Thc_sim.Obs.t) with
          | Executed { seq = 1; op; _ } -> Some op
          | _ -> None)
        (Thc_sim.Trace.outputs_of trace pid))
    (List.filter (fun p -> p < replicas) (Thc_sim.Trace.correct_pids trace))
  |> List.sort_uniq compare |> List.length

let run_unattested ?(f = 1) ~seed ~configure ~until () =
  let n = (2 * f) + 1 in
  let total = n + 1 (* one client identity for signing requests *) in
  let rng = Thc_util.Rng.create seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:total in
  let net = Thc_sim.Net.create ~n:total ~default:(Thc_sim.Delay.Uniform (50L, 500L)) in
  let engine = Thc_sim.Engine.create ~seed ~n:total ~net () in
  for pid = 1 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (unattested_replica ~keyring
         ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
         ~f ~self:pid ())
  done;
  let req_a, req_b = requests ~keyring ~client_pid:n in
  let leader_ident = Thc_crypto.Keyring.secret keyring ~pid:0 in
  let group_a, group_b = groups ~f in
  split_attack ~engine ~n ~group_a ~group_b
    ~wire_a:(Thc_crypto.Signature.seal leader_ident (Uprepare { seq = 1; request = req_a }))
    ~wire_b:(Thc_crypto.Signature.seal leader_ident (Uprepare { seq = 1; request = req_b }));
  configure engine;
  let trace = Thc_sim.Engine.run ~until engine in
  let violations = Smr_spec.check_safety trace ~replicas:n in
  {
    violations;
    distinct_ops_at_seq1 = distinct_at_seq1 trace ~replicas:n;
    messages = Thc_sim.Trace.messages_sent trace;
    duration_us = trace.Thc_sim.Trace.end_time;
    commits = Smr_spec.commits trace ~replicas:n;
    trusted_ops = [];  (* nothing attested: the whole point of the ablation *)
    detail =
      "f+1 quorums over plain signatures: the equivocating leader commits \
       two different operations at sequence 1";
  }

let equivocation_splits_unattested ?(f = 1) ?(seed = 3L) () =
  run_unattested ~f ~seed ~configure:(fun _ -> ()) ~until:1_000_000L ()

(* ----------------------------------------------------------------------- *)
(* Scriptable attacker interface: the byz catalog runs arbitrary leader     *)
(* behaviors against the same unattested protocol.  A separate entry point  *)
(* so the legacy runs above (replayed from the checked-in repro corpus)     *)
(* keep their exact event order.                                            *)
(* ----------------------------------------------------------------------- *)

module Unattested = struct
  type wire = umsg

  type env = {
    engine : wire Thc_sim.Engine.t;
    f : int;
    n : int;
    group_a : int list;
    group_b : int list;
    req_a : Command.signed_request;
    req_b : Command.signed_request;
    leader_ident : Thc_crypto.Keyring.secret;
    client_ident : Thc_crypto.Keyring.secret;
  }

  let prepare env ~seq request =
    Thc_crypto.Signature.seal env.leader_ident (Uprepare { seq; request })

  let commit env ~seq ~digest =
    Thc_crypto.Signature.seal env.leader_ident (Ucommit { seq; digest })

  let request env ~rid op = Command.make ~ident:env.client_ident ~rid op

  let snapshot env ~state ~upto =
    Thc_crypto.Signature.seal env.leader_ident (Usnapshot { state; upto })

  let digest req = Command.digest req.Thc_crypto.Signature.value

  let run ?(f = 1) ?(spans = Thc_obsv.Span.nop) ?(restarts = []) ~seed ~attacker
      ~detail ?(until = 1_000_000L) () =
    let n = (2 * f) + 1 in
    let total = n + 1 (* one client identity for signing requests *) in
    let rng = Thc_util.Rng.create seed in
    let keyring = Thc_crypto.Keyring.create rng ~n:total in
    let net =
      Thc_sim.Net.create ~n:total ~default:(Thc_sim.Delay.Uniform (50L, 500L))
    in
    let engine = Thc_sim.Engine.create ~seed ~spans ~n:total ~net () in
    for pid = 1 to n - 1 do
      Thc_sim.Engine.set_behavior engine pid
        (unattested_replica
           ?restart_at:(List.assoc_opt pid restarts)
           ~keyring
           ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
           ~f ~self:pid ())
    done;
    let req_a, req_b = requests ~keyring ~client_pid:n in
    let group_a, group_b = groups ~f in
    let env =
      {
        engine;
        f;
        n;
        group_a;
        group_b;
        req_a;
        req_b;
        leader_ident = Thc_crypto.Keyring.secret keyring ~pid:0;
        client_ident = Thc_crypto.Keyring.secret keyring ~pid:n;
      }
    in
    Thc_sim.Engine.mark_byzantine engine 0;
    Thc_sim.Engine.set_behavior engine 0 (attacker env);
    let trace = Thc_sim.Engine.run ~until engine in
    let violations = Smr_spec.check_safety trace ~replicas:n in
    {
      violations;
      distinct_ops_at_seq1 = distinct_at_seq1 trace ~replicas:n;
      messages = Thc_sim.Trace.messages_sent trace;
      duration_us = trace.Thc_sim.Trace.end_time;
      commits = Smr_spec.commits trace ~replicas:n;
      trusted_ops = [];
      detail;
    }
end

let unattested_under_script ?(f = 1) ?network ~seed ~script () =
  run_unattested ~f ~seed
    ~configure:(fun engine ->
      Thc_sim.Adversary.install script engine;
      Option.iter
        (fun m ->
          Thc_network.Model.install m engine ~replicas:((2 * f) + 1) ~script ())
        network)
    ~until:(max 1_000_000L (Int64.add script.Thc_sim.Adversary.horizon 1_000_000L))
    ()

let equivocation_fails_against_minbft ?(f = 1) ?(seed = 3L) () =
  let config = Minbft.default_config ~f in
  let n = config.Minbft.n in
  let total = n + 1 in
  let rng = Thc_util.Rng.create seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:total in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let net = Thc_sim.Net.create ~n:total ~default:(Thc_sim.Delay.Uniform (50L, 500L)) in
  let engine = Thc_sim.Engine.create ~seed ~n:total ~net () in
  (* Correct replicas 1..n-1 run real MinBFT; the leader's trinket goes to
     the attacker. *)
  for pid = 1 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Minbft.replica
         (Minbft.create_replica ~config ~keyring ~world
            ~trinket:(Thc_hardware.Trinc.trinket world ~owner:pid)
            ~self:pid))
  done;
  let req_a, req_b = requests ~keyring ~client_pid:n in
  let out = Attested_link.Out.create (Thc_hardware.Trinc.trinket world ~owner:0) in
  (* The strongest sealable equivocation: two prepares for seq 1 — the
     trinket forces them onto distinct counters. *)
  let wire_a = Minbft.adversarial_prepare ~out ~view:0 ~seq:1 ~request:req_a in
  let wire_b = Minbft.adversarial_prepare ~out ~view:0 ~seq:1 ~request:req_b in
  let group_a, group_b = groups ~f in
  split_attack ~engine ~n ~group_a ~group_b ~wire_a ~wire_b;
  let trace = Thc_sim.Engine.run ~until:1_000_000L engine in
  let violations = Smr_spec.check_safety trace ~replicas:n in
  {
    violations;
    distinct_ops_at_seq1 = distinct_at_seq1 trace ~replicas:n;
    messages = Thc_sim.Trace.messages_sent trace;
    duration_us = trace.Thc_sim.Trace.end_time;
    commits = Smr_spec.commits trace ~replicas:n;
    trusted_ops = Thc_obsv.Ledger.rows (Thc_hardware.Trinc.ledger world);
    detail =
      "same attack against attested links: the second proposal hides behind \
       a counter gap, at most one operation can commit";
  }
