(** Deterministic key-value state machine — the replicated service.

    Both replication protocols execute the same command stream against this
    machine; determinism (same command sequence ⇒ same results and state
    digest) is what the safety monitors check across replicas. *)

type t

type op =
  | Get of string
  | Put of string * string
  | Delete of string
  | Incr of string  (** Numeric increment; non-numeric values count as 0. *)

type result =
  | Value of string option  (** [Get]: the mapped value. *)
  | Stored  (** [Put]/[Delete] acknowledgement. *)
  | Counter of int  (** [Incr]: the post-increment value. *)

val create : unit -> t

val apply : t -> op -> result
(** Execute one operation, mutating the store. *)

val digest : t -> int64
(** Order-insensitive digest of the current contents — equal iff the maps
    are equal; replicas compare these after executing a prefix. *)

val size : t -> int

val snapshot : t -> (string * string) list
(** Current contents as sorted bindings — equal stores snapshot to equal
    lists.  What a checkpoint certificate's digest commits to and what
    state transfer ships. *)

val restore : (string * string) list -> t
(** Fresh store holding exactly the given bindings;
    [digest (restore (snapshot t)) = digest t]. *)

val reset_to : t -> (string * string) list -> unit
(** Replace [t]'s contents in place (a restarting replica installing a
    verified snapshot into its existing store). *)

val encode_op : op -> string
val decode_op : string -> op
val encode_result : result -> string
val decode_result : string -> result
val pp_op : Format.formatter -> op -> unit
val pp_result : Format.formatter -> result -> unit
