type request = { client : int; rid : int; op : string }

type signed_request = request Thc_crypto.Signature.signed

let make ~ident ~rid op =
  Thc_crypto.Signature.seal ident
    {
      client = Thc_crypto.Keyring.pid_of_secret ident;
      rid;
      op = Kv_store.encode_op op;
    }

let valid keyring (sr : signed_request) =
  Thc_crypto.Signature.sealed_by keyring sr ~expect:sr.value.client

let digest r = Thc_crypto.Digest.to_int64 (Thc_crypto.Digest.of_value r)

let key r = (r.client, r.rid)

let pp ppf r = Format.fprintf ppf "req(c%d#%d)" r.client r.rid

(* --- batches ----------------------------------------------------------- *)

type batch = signed_request list

let batch_digest_of_requests (rs : request list) =
  Thc_crypto.Digest.to_int64 (Thc_crypto.Digest.of_value (List.map digest rs))

let batch_digest (b : batch) =
  batch_digest_of_requests
    (List.map (fun (sr : signed_request) -> sr.Thc_crypto.Signature.value) b)

let batch_valid keyring (b : batch) = b <> [] && List.for_all (valid keyring) b

let batch_keys (b : batch) =
  List.map (fun (sr : signed_request) -> key sr.Thc_crypto.Signature.value) b

let pp_batch ppf (b : batch) =
  Format.fprintf ppf "batch[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       (fun ppf (sr : signed_request) -> pp ppf sr.Thc_crypto.Signature.value))
    b

type reply = { replica : int; rid : int; result : string }

module Collector = struct
  type t = {
    quorum : int;
    votes : (int, (int * string) list) Hashtbl.t;  (* rid -> (replica, result) *)
    done_ : (int, unit) Hashtbl.t;
  }

  let create ~quorum = { quorum; votes = Hashtbl.create 32; done_ = Hashtbl.create 32 }

  let add t (r : reply) =
    if Hashtbl.mem t.done_ r.rid then None
    else begin
      let votes = Option.value ~default:[] (Hashtbl.find_opt t.votes r.rid) in
      if List.mem_assoc r.replica votes then None
      else begin
        let votes = (r.replica, r.result) :: votes in
        Hashtbl.replace t.votes r.rid votes;
        let matching result =
          List.length (List.filter (fun (_, res) -> String.equal res result) votes)
        in
        if matching r.result >= t.quorum then begin
          Hashtbl.replace t.done_ r.rid ();
          Some r.result
        end
        else None
      end
    end

  let completed t ~rid = Hashtbl.mem t.done_ rid
end
