type t = Minbft | Pbft | Ubft

let all = [ Minbft; Pbft; Ubft ]

let to_string = function
  | Minbft -> "minbft"
  | Pbft -> "pbft"
  | Ubft -> "ubft"

let of_string = function
  | "minbft" -> Some Minbft
  | "pbft" -> Some Pbft
  | "ubft" -> Some Ubft
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let conv =
  let parse s =
    match of_string s with
    | Some t -> Ok t
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown protocol %S (expected one of: %s)" s
             (String.concat ", " (List.map to_string all))))
  in
  Cmdliner.Arg.conv (parse, pp)
