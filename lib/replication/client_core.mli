(** Protocol-independent replication client.

    Sends each planned request to all replicas at its scheduled time, waits
    for a quorum of matching replies, and emits [Obs.Client_done] with the
    end-to-end latency.  {!Minbft.client} (quorum f+1) and {!Pbft.client}
    (quorum f+1 as well — replies only need one correct replica, plus f to
    out-vote liars) instantiate it over their message types. *)

val behavior :
  rid_base:int ->
  n_replicas:int ->
  quorum:int ->
  ident:Thc_crypto.Keyring.secret ->
  plan:(int64 * Kv_store.op) list ->
  wrap:(Command.signed_request -> 'm) ->
  unwrap:('m -> Command.reply option) ->
  'm Thc_sim.Engine.behavior
(** [wrap] embeds a request into the protocol's wire type; [unwrap] projects
    replies out of it (anything else → [None]).  Request ids are
    [rid_base + i] for plan index [i]: when several clients
    run concurrently, give each a disjoint base so rids stay globally unique
    in the trace. *)
