type protocol = Protocol.t = Minbft | Pbft | Ubft

type scenario =
  | Fault_free
  | Crash_leader of int64
  | Silent_replicas
  | Scripted of Thc_sim.Adversary.t
  | Restart_replica of { pid : int; at : int64 }

type setup = {
  protocol : protocol;
  f : int;
  ops : int;
  clients : int;
  batch : int;
  interval : int64;
  delay : Thc_sim.Delay.t;
  scenario : scenario;
  seed : int64;
  network : Thc_network.Model.t option;
  checkpoint_interval : int;
}

module Setup = struct
  type t = setup

  (* The one construction path for setups: every in-tree record literal
     migrated here, so defaults live in exactly one place and adding a
     field never fans out across the callers again.  The defaults are the
     historical literals byte-for-byte (golden corpus locks this). *)
  let make ?(ops = 25) ?(clients = 1) ?(batch = 1) ?(interval = 5_000L)
      ?(delay = Thc_sim.Delay.Uniform (50L, 500L)) ?(scenario = Fault_free)
      ?network ?(checkpoint_interval = 0) ~protocol ~f ~seed () =
    {
      protocol;
      f;
      ops;
      clients;
      batch;
      interval;
      delay;
      scenario;
      seed;
      network;
      checkpoint_interval;
    }
end

type outcome = {
  replicas : int;
  completed : int;
  commits : int;
  latency : Thc_util.Stats.summary;
  lat_hist : Thc_obsv.Metrics.Histogram.t;
  messages : int;
  messages_per_op : float;
  duration_us : int64;
  safety_violations : Smr_spec.violation list;
  liveness_violations : Smr_spec.violation list;
  final_view : int;
  breakdown : (string * int) list;
  sends_by_replica : (int * int) list;
  delivery : Thc_sim.Metrics.delivery_report;
  net : (string * int) list;
  trusted_ops : (string * int) list;
  trusted_per_commit : float;
  trusted_per_request : float;
  latency_by_client : (int * Thc_util.Stats.summary) list;
  metrics : Thc_obsv.Metrics.t;
  events : int;
  durability : Durability.stats;
}

let default_workload ~ops ~seed =
  let rng = Thc_util.Rng.create seed in
  List.init ops (fun i ->
      let key = Printf.sprintf "k%d" (Thc_util.Rng.int rng 16) in
      match Thc_util.Rng.int rng 4 with
      | 0 -> Kv_store.Get key
      | 1 -> Kv_store.Put (key, Printf.sprintf "v%d" i)
      | 2 -> Kv_store.Incr key
      | _ -> Kv_store.Put (key, Printf.sprintf "w%d" i))

let n_clients setup = max 1 setup.clients

(* Per-client seeds stay deterministic while giving each client its own
   operation stream; client 0 keeps the single-client stream of old runs. *)
let client_seed setup c = Int64.add setup.seed (Int64.of_int (7919 * c))

let plan_for setup c =
  List.mapi
    (fun i op -> (Int64.mul (Int64.of_int (i + 1)) setup.interval, op))
    (default_workload ~ops:setup.ops ~seed:(client_seed setup c))

(* Virtual-time horizon: leave room for timeouts and view changes; a
   scripted adversary extends it so the run continues well past the final
   heal and "eventually" clauses can be judged. *)
let horizon setup =
  let workload =
    Int64.add
      (Int64.mul (Int64.of_int (setup.ops + 2)) setup.interval)
      2_000_000L
  in
  match setup.scenario with
  | Scripted script -> max workload (Int64.add script.Thc_sim.Adversary.horizon 2_000_000L)
  | Restart_replica { at; _ } -> max workload (Int64.add at 2_000_000L)
  | Fault_free | Crash_leader _ | Silent_replicas -> workload

let expected_liveness setup =
  (* Under a crashed leader or silent replicas liveness must still hold (f
     tolerated faults); the monitors check all requests completed.  A
     scripted adversary is only obliged to preserve liveness while it stays
     within the fault bound. *)
  match setup.scenario with
  (* A restarting replica counts as one tolerated fault: the f+1 quorums
     among the others keep serving clients while it rejoins. *)
  | Fault_free | Crash_leader _ | Silent_replicas | Restart_replica _ -> true
  | Scripted script ->
    List.length (Thc_sim.Adversary.crashed script) <= setup.f

(* Fold everything the dashboard needs into one registry so a single
   snapshot line in the export carries the whole numeric state of the run. *)
let registry_of ~latencies ~completed ~commits ~messages ~breakdown
    ~sends_by_replica ~(delivery : Thc_sim.Metrics.delivery_report) ~net_rows
    ~trusted_ops =
  let m = Thc_obsv.Metrics.create () in
  let count name v = Thc_obsv.Metrics.add (Thc_obsv.Metrics.counter m name) v in
  let lat = Thc_obsv.Metrics.histogram m "commit.latency_us" in
  List.iter (fun l -> Thc_obsv.Metrics.Histogram.record lat (Int64.of_float l))
    latencies;
  count "client.completed" completed;
  count "commit.count" commits;
  count "net.sent" messages;
  count "net.held_at_end" delivery.held_at_end;
  count "net.in_flight_at_end" delivery.in_flight_at_end;
  List.iter (fun (kind, c) -> count ("msg.kind." ^ kind) c) breakdown;
  List.iter
    (fun (pid, c) -> count (Printf.sprintf "net.sends.p%d" pid) c)
    sends_by_replica;
  List.iter
    (fun (k, v) ->
      match k with
      | "in-flight at end" | "in-flight high-water" | "held at end"
      | "held queue high-water" ->
        (* levels, not monotone counts; hwm folded in by the rows below *)
        ignore v
      | _ -> count ("link." ^ String.map (function ' ' -> '_' | c -> c) k) v)
    net_rows;
  let level name ~last ~hwm =
    let g = Thc_obsv.Metrics.gauge m name in
    Thc_obsv.Metrics.set_gauge g hwm;
    Thc_obsv.Metrics.set_gauge g last
  in
  (match
     ( List.assoc_opt "in-flight at end" net_rows,
       List.assoc_opt "in-flight high-water" net_rows )
   with
  | Some last, Some hwm -> level "link.in_flight" ~last ~hwm
  | _ -> ());
  (match
     ( List.assoc_opt "held at end" net_rows,
       List.assoc_opt "held queue high-water" net_rows )
   with
  | Some last, Some hwm -> level "link.held" ~last ~hwm
  | _ -> ());
  List.iter (fun (op, c) -> count ("hw." ^ op) c) trusted_ops;
  (m, lat)

let finish (type m) setup ~(trace : m Thc_sim.Trace.t) ~replicas
    ~final_view ~classify ~net_stats ~hw ~events ~durability =
  let latencies = Smr_spec.client_latencies trace in
  let completed = List.length latencies in
  let commits = Smr_spec.commits trace ~replicas in
  let messages = Thc_sim.Trace.messages_sent trace in
  let breakdown = Thc_sim.Metrics.kind_counts trace ~classify in
  let sends_by_replica = Thc_sim.Metrics.sends_by_source trace in
  let delivery = Thc_sim.Metrics.delivery_report trace in
  let net = Thc_obsv.Link_stats.rows net_stats in
  let trusted_ops = Thc_obsv.Ledger.rows hw in
  let metrics, lat_hist =
    registry_of ~latencies ~completed ~commits ~messages ~breakdown
      ~sends_by_replica ~delivery ~net_rows:net ~trusted_ops
  in
  (* Durability gauges appear only when checkpointing was requested, so
     legacy runs' metric snapshots (golden corpus) keep their bytes. *)
  if setup.checkpoint_interval > 0 then
    List.iter
      (fun (k, v) ->
        Thc_obsv.Metrics.set_gauge (Thc_obsv.Metrics.gauge metrics k) v)
      (Durability.rows ~prefix:"ckpt" durability);
  {
    replicas;
    completed;
    commits;
    latency = Thc_util.Stats.summarize latencies;
    lat_hist;
    messages;
    messages_per_op =
      (if completed = 0 then 0.0 else float_of_int messages /. float_of_int completed);
    duration_us = trace.Thc_sim.Trace.end_time;
    safety_violations =
      Smr_spec.check_safety trace ~replicas
      @ Smr_spec.check_state_determinism trace ~replicas;
    liveness_violations =
      (if expected_liveness setup then
         Smr_spec.check_liveness trace
           ~expected:
             (Smr_spec.expect_range ~clients:(n_clients setup)
                ~per_client:setup.ops ~first_client_pid:replicas)
       else []);
    final_view;
    breakdown;
    sends_by_replica;
    delivery;
    net;
    trusted_ops;
    trusted_per_commit =
      (if commits = 0 then 0.0
       else float_of_int (Thc_obsv.Ledger.total hw) /. float_of_int commits);
    trusted_per_request =
      (if completed = 0 then 0.0
       else
         float_of_int (Thc_obsv.Ledger.total hw) /. float_of_int completed);
    latency_by_client =
      List.map
        (fun (pid, ls) -> (pid, Thc_util.Stats.summarize ls))
        (Smr_spec.latencies_by_client trace);
    metrics;
    events;
    durability;
  }

let export_of (type m) ~(trace : m Thc_sim.Trace.t) ~outcome =
  let module J = Thc_obsv.Json in
  let b = Buffer.create 65536 in
  Buffer.add_string b
    (Thc_sim.Trace.to_jsonl ~encode_msg:Thc_util.Codec.encode trace);
  let line j =
    Buffer.add_string b (J.to_string j);
    Buffer.add_char b '\n'
  in
  line
    (J.Obj
       [
         ("type", J.Str "metrics");
         ( "snapshot",
           Thc_obsv.Metrics.snapshot_to_json
             (Thc_obsv.Metrics.snapshot outcome.metrics) );
       ]);
  line
    (J.Obj
       [
         ("type", J.Str "ledger");
         ("ops", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) outcome.trusted_ops));
         ("commits", J.Int outcome.commits);
       ]);
  Buffer.contents b

let apply_scenario (type m) setup ~(engine : m Thc_sim.Engine.t) ~replicas =
  match setup.scenario with
  | Fault_free -> ()
  | Restart_replica { pid; at } ->
    if pid >= replicas then
      invalid_arg "Harness: restart scenario may only target a replica";
    if at <= 0L then invalid_arg "Harness: restart time must be positive"
    (* the wipe itself is wired at behavior-install time (Minbft only) *)
  | Crash_leader at -> Thc_sim.Engine.schedule_crash engine ~pid:0 ~at
  | Silent_replicas ->
    for i = 0 to setup.f - 1 do
      Thc_sim.Engine.schedule_crash engine ~pid:(replicas - 1 - i) ~at:0L
    done
  | Scripted script ->
    List.iter
      (fun pid ->
        if pid >= replicas then
          invalid_arg "Harness: scripted adversary may only crash replicas")
      (Thc_sim.Adversary.crashed script);
    Thc_sim.Adversary.install script engine

(* Lower the named network model (if any) onto the engine.  Must run after
   [apply_scenario]: the model schedules re-lowerings at the script's heal
   times, and the engine breaks same-time ties by installation order. *)
let install_network setup ~engine ~replicas =
  match setup.network with
  | None -> ()
  | Some m ->
    let script =
      match setup.scenario with
      | Scripted s -> Some s
      | Fault_free | Crash_leader _ | Silent_replicas | Restart_replica _ ->
        None
    in
    Thc_network.Model.install m engine ~replicas ?script ()

(* Rational client strategies (racing duplicates) ride on the installed
   client behaviors; identity when no model is set. *)
let wrap_net_client setup ~replicas ~clients ~c ~pid behavior =
  match setup.network with
  | None -> behavior
  | Some m ->
    Thc_network.Model.wrap_client m ~replicas ~f:setup.f ~clients
      ~client_index:c ~pid behavior

(* The two protocol builders share their shape through a continuation:
   assemble the cluster (engine at the requested tracing level, replicas,
   clients, fault schedule), then hand the engine plus the
   protocol-specific accessors to [k].  Full-fidelity runs and the
   throughput-mode lite runs differ only in the continuation. *)
let with_minbft ?(spans = Thc_obsv.Span.nop) setup ~tracing k =
  let config =
    {
      (Minbft.default_config ~f:setup.f) with
      batch_size = max 1 setup.batch;
      checkpoint_interval = max 0 setup.checkpoint_interval;
    }
  in
  let n = config.n in
  let clients = n_clients setup in
  let total = n + clients in
  let rng = Thc_util.Rng.create setup.seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:total in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let net = Thc_sim.Net.create ~n:total ~default:setup.delay in
  let engine =
    Thc_sim.Engine.create ~seed:setup.seed ~tracing ~spans ~n:total ~net ()
  in
  (* Every trusted-hardware bump lands on the ambient span phase, so the
     per-phase table attributes seals/verifies to prepare vs commit. *)
  if Thc_obsv.Span.enabled spans then
    Thc_obsv.Ledger.set_observer
      (Thc_hardware.Trinc.ledger world)
      (Thc_obsv.Span.attribute spans);
  let states =
    Array.init n (fun self ->
        Minbft.create_replica ~config ~keyring ~world
          ~trinket:(Thc_hardware.Trinc.trinket world ~owner:self)
          ~self)
  in
  let restart_for pid =
    match setup.scenario with
    | Restart_replica { pid = p; at } when p = pid -> Some at
    | _ -> None
  in
  Array.iteri
    (fun pid st ->
      Thc_sim.Engine.set_behavior engine pid
        (Minbft.replica ?restart_at:(restart_for pid) st))
    states;
  for c = 0 to clients - 1 do
    let pid = n + c in
    Thc_sim.Engine.set_behavior engine pid
      (wrap_net_client setup ~replicas:n ~clients ~c ~pid
         (Minbft.client ~rid_base:(c * setup.ops) ~config ~keyring
            ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
            ~plan:(plan_for setup c)))
  done;
  apply_scenario setup ~engine ~replicas:n;
  install_network setup ~engine ~replicas:n;
  k engine ~replicas:n
    ~final_view:(fun () ->
      Array.fold_left (fun acc st -> max acc (Minbft.view_of st)) 0 states)
    ~classify:Minbft.classify_msg
    ~hw:(Thc_hardware.Trinc.ledger world)
    ~durability:(fun () ->
      Durability.merge (Array.to_list (Array.map Minbft.durability states)))

let with_pbft ?(spans = Thc_obsv.Span.nop) setup ~tracing k =
  (match setup.scenario with
  | Restart_replica _ ->
    invalid_arg "Harness: restart scenario is only wired for minbft"
  | Fault_free | Crash_leader _ | Silent_replicas | Scripted _ -> ());
  let config =
    { (Pbft.default_config ~f:setup.f) with batch_size = max 1 setup.batch }
  in
  let n = config.n in
  let clients = n_clients setup in
  let total = n + clients in
  let rng = Thc_util.Rng.create setup.seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:total in
  let net = Thc_sim.Net.create ~n:total ~default:setup.delay in
  let engine =
    Thc_sim.Engine.create ~seed:setup.seed ~tracing ~spans ~n:total ~net ()
  in
  let states =
    Array.init n (fun self ->
        Pbft.create_replica ~config ~keyring
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid:self)
          ~self)
  in
  Array.iteri
    (fun pid st -> Thc_sim.Engine.set_behavior engine pid (Pbft.replica st))
    states;
  for c = 0 to clients - 1 do
    let pid = n + c in
    Thc_sim.Engine.set_behavior engine pid
      (wrap_net_client setup ~replicas:n ~clients ~c ~pid
         (Pbft.client ~rid_base:(c * setup.ops) ~config ~keyring
            ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
            ~plan:(plan_for setup c)))
  done;
  apply_scenario setup ~engine ~replicas:n;
  install_network setup ~engine ~replicas:n;
  k engine ~replicas:n
    ~final_view:(fun () ->
      Array.fold_left (fun acc st -> max acc (Pbft.view_of st)) 0 states)
    ~classify:Pbft.classify_msg
    (* PBFT spends no trusted ops; an empty ledger keeps the rate at 0. *)
    ~hw:(Thc_obsv.Ledger.create ())
    (* ... and has no attested checkpoints either. *)
    ~durability:(fun () -> Durability.zero)

let with_ubft ?(spans = Thc_obsv.Span.nop) setup ~tracing k =
  (match setup.scenario with
  | Restart_replica _ ->
    invalid_arg "Harness: restart scenario is only wired for minbft"
  | Fault_free | Crash_leader _ | Silent_replicas | Scripted _ -> ());
  let config =
    {
      (Ubft.default_config ~f:setup.f) with
      batch_size = max 1 setup.batch;
      (* uBFT always checkpoints (register memory must stay bounded); a
         positive setup interval overrides its default cadence. *)
      checkpoint_interval =
        (if setup.checkpoint_interval > 0 then setup.checkpoint_interval
         else (Ubft.default_config ~f:setup.f).checkpoint_interval);
    }
  in
  let n = config.n in
  let clients = n_clients setup in
  let total = n + clients in
  let rng = Thc_util.Rng.create setup.seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:total in
  let net = Thc_sim.Net.create ~n:total ~default:setup.delay in
  let engine =
    Thc_sim.Engine.create ~seed:setup.seed ~tracing ~spans ~n:total ~net ()
  in
  (* uBFT's trusted hardware is the shared memory itself: one ledger
     attached to every register counts reads/writes/appends (and denied
     forgeries) the way the trinket ledger counts seals/verifies. *)
  let registers : Ubft.registers = Thc_sharedmem.Swmr.log_array ~n in
  let hw = Thc_obsv.Ledger.create () in
  Thc_sharedmem.Swmr.attach_ledger_all registers hw;
  if Thc_obsv.Span.enabled spans then
    Thc_obsv.Ledger.set_observer hw (Thc_obsv.Span.attribute spans);
  let states =
    Array.init n (fun self ->
        Ubft.create_replica ~config ~keyring ~registers
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid:self)
          ~self)
  in
  Array.iteri
    (fun pid st -> Thc_sim.Engine.set_behavior engine pid (Ubft.replica st))
    states;
  for c = 0 to clients - 1 do
    let pid = n + c in
    Thc_sim.Engine.set_behavior engine pid
      (wrap_net_client setup ~replicas:n ~clients ~c ~pid
         (Ubft.client ~rid_base:(c * setup.ops) ~config ~keyring
            ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
            ~plan:(plan_for setup c)))
  done;
  apply_scenario setup ~engine ~replicas:n;
  install_network setup ~engine ~replicas:n;
  k engine ~replicas:n
    ~final_view:(fun () ->
      Array.fold_left (fun acc st -> max acc (Ubft.view_of st)) 0 states)
    ~classify:Ubft.classify_msg ~hw
    ~durability:(fun () ->
      Durability.merge (Array.to_list (Array.map Ubft.durability states)))

let full_run setup engine ~replicas ~final_view ~classify ~hw ~durability =
  let trace =
    Thc_sim.Engine.run ~until:(horizon setup) ~max_events:20_000_000 engine
  in
  let outcome =
    finish setup ~trace ~replicas ~final_view:(final_view ()) ~classify
      ~net_stats:(Thc_sim.Engine.stats engine)
      ~hw
      ~events:(Thc_sim.Engine.events_processed engine)
      ~durability:(durability ())
  in
  (outcome, fun () -> export_of ~trace ~outcome)

let run_minbft setup =
  with_minbft setup ~tracing:Thc_sim.Engine.Full (full_run setup)

let run_pbft setup =
  with_pbft setup ~tracing:Thc_sim.Engine.Full (full_run setup)

let run_ubft setup =
  with_ubft setup ~tracing:Thc_sim.Engine.Full (full_run setup)

let run setup =
  match setup.protocol with
  | Minbft -> fst (run_minbft setup)
  | Pbft -> fst (run_pbft setup)
  | Ubft -> fst (run_ubft setup)

let run_export setup =
  let outcome, export =
    match setup.protocol with
    | Minbft -> run_minbft setup
    | Pbft -> run_pbft setup
    | Ubft -> run_ubft setup
  in
  (outcome, export ())

(* Span-collecting run: a full-fidelity run with a live recorder installed,
   so the caller gets both the ordinary outcome and the per-request causal
   views.  The recorder stamps virtual time only — the trace, metrics and
   RNG draws are byte-identical to [run] on the same setup. *)
let run_spans setup =
  let spans = Thc_obsv.Span.create () in
  let outcome =
    match setup.protocol with
    | Minbft ->
      fst (with_minbft ~spans setup ~tracing:Thc_sim.Engine.Full (full_run setup))
    | Pbft ->
      fst (with_pbft ~spans setup ~tracing:Thc_sim.Engine.Full (full_run setup))
    | Ubft ->
      fst (with_ubft ~spans setup ~tracing:Thc_sim.Engine.Full (full_run setup))
  in
  (outcome, Thc_obsv.Span.views spans, Thc_obsv.Span.ops_rows spans)

type lite = {
  l_completed : int;
  l_commits : int;
  l_messages : int;
  l_events : int;
  l_duration_us : int64;
}

(* Throughput-mode run: same cluster, same schedule, same RNG draws —
   the engine records only Output/Crashed entries and the reduction
   skips the full metric registry, so nearly all of the wall time is the
   simulation itself.  Used by the S4 engine-throughput benchmarks. *)
let run_lite setup =
  let lite : type m.
      m Thc_sim.Engine.t ->
      replicas:int ->
      final_view:(unit -> int) ->
      classify:(m -> string) ->
      hw:Thc_obsv.Ledger.t ->
      durability:(unit -> Durability.stats) ->
      lite =
   fun engine ~replicas ~final_view:_ ~classify:_ ~hw:_ ~durability:_ ->
    let trace =
      Thc_sim.Engine.run ~until:(horizon setup) ~max_events:20_000_000 engine
    in
    {
      l_completed = List.length (Smr_spec.client_latencies trace);
      l_commits = Smr_spec.commits trace ~replicas;
      l_messages = Thc_obsv.Link_stats.sends (Thc_sim.Engine.stats engine);
      l_events = Thc_sim.Engine.events_processed engine;
      l_duration_us = trace.Thc_sim.Trace.end_time;
    }
  in
  match setup.protocol with
  | Minbft -> with_minbft setup ~tracing:Thc_sim.Engine.Outputs_only lite
  | Pbft -> with_pbft setup ~tracing:Thc_sim.Engine.Outputs_only lite
  | Ubft -> with_ubft setup ~tracing:Thc_sim.Engine.Outputs_only lite

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>replicas=%d completed=%d commits=%d msgs=%d (%.1f/op) dur=%Ldµs \
     view=%d@,latency: %a@,safety: %d violation(s), liveness: %d violation(s)@,\
     trusted ops: %d (%.1f/commit, %.2f/req)@]"
    o.replicas o.completed o.commits o.messages o.messages_per_op o.duration_us
    o.final_view Thc_util.Stats.pp_summary o.latency
    (List.length o.safety_violations)
    (List.length o.liveness_violations)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 o.trusted_ops)
    o.trusted_per_commit o.trusted_per_request;
  (* Durability line only when the discipline is on (something stabilized
     or was truncated): legacy output stays byte-identical at
     checkpoint_interval = 0 (and for PBFT). *)
  if
    o.durability.Durability.stable_upto > 0
    || o.durability.Durability.truncations > 0
  then
    Format.fprintf ppf
      "@.durability: log live %d, hwm %d, stable upto %d, %d truncation(s)"
      o.durability.Durability.live o.durability.Durability.hwm
      o.durability.Durability.stable_upto o.durability.Durability.truncations
