type protocol = Minbft_protocol | Pbft_protocol

type scenario =
  | Fault_free
  | Crash_leader of int64
  | Silent_replicas
  | Scripted of Thc_sim.Adversary.t

type setup = {
  protocol : protocol;
  f : int;
  ops : int;
  interval : int64;
  delay : Thc_sim.Delay.t;
  scenario : scenario;
  seed : int64;
}

type outcome = {
  replicas : int;
  completed : int;
  latency : Thc_util.Stats.summary;
  messages : int;
  messages_per_op : float;
  duration_us : int64;
  safety_violations : Smr_spec.violation list;
  liveness_violations : Smr_spec.violation list;
  final_view : int;
  breakdown : (string * int) list;
}

let default_workload ~ops ~seed =
  let rng = Thc_util.Rng.create seed in
  List.init ops (fun i ->
      let key = Printf.sprintf "k%d" (Thc_util.Rng.int rng 16) in
      match Thc_util.Rng.int rng 4 with
      | 0 -> Kv_store.Get key
      | 1 -> Kv_store.Put (key, Printf.sprintf "v%d" i)
      | 2 -> Kv_store.Incr key
      | _ -> Kv_store.Put (key, Printf.sprintf "w%d" i))

let plan_of setup =
  List.mapi
    (fun i op -> (Int64.mul (Int64.of_int (i + 1)) setup.interval, op))
    (default_workload ~ops:setup.ops ~seed:setup.seed)

(* Virtual-time horizon: leave room for timeouts and view changes; a
   scripted adversary extends it so the run continues well past the final
   heal and "eventually" clauses can be judged. *)
let horizon setup =
  let workload =
    Int64.add
      (Int64.mul (Int64.of_int (setup.ops + 2)) setup.interval)
      2_000_000L
  in
  match setup.scenario with
  | Scripted script -> max workload (Int64.add script.Thc_sim.Adversary.horizon 2_000_000L)
  | Fault_free | Crash_leader _ | Silent_replicas -> workload

let expected_liveness setup =
  (* Under a crashed leader or silent replicas liveness must still hold (f
     tolerated faults); the monitors check all requests completed.  A
     scripted adversary is only obliged to preserve liveness while it stays
     within the fault bound. *)
  match setup.scenario with
  | Fault_free | Crash_leader _ | Silent_replicas -> true
  | Scripted script ->
    List.length (Thc_sim.Adversary.crashed script) <= setup.f

let finish (type m) setup ~(trace : m Thc_sim.Trace.t) ~replicas ~client
    ~final_view ~classify =
  let latencies = Smr_spec.client_latencies trace in
  let completed = List.length latencies in
  let messages = Thc_sim.Trace.messages_sent trace in
  {
    replicas;
    completed;
    latency = Thc_util.Stats.summarize latencies;
    messages;
    messages_per_op =
      (if completed = 0 then 0.0 else float_of_int messages /. float_of_int completed);
    duration_us = trace.Thc_sim.Trace.end_time;
    safety_violations =
      Smr_spec.check_safety trace ~replicas
      @ Smr_spec.check_state_determinism trace ~replicas;
    liveness_violations =
      (if expected_liveness setup then
         Smr_spec.check_liveness trace ~clients:[ client ] ~expected:setup.ops
       else []);
    final_view;
    breakdown = Thc_sim.Metrics.kind_counts trace ~classify;
  }

let apply_scenario (type m) setup ~(engine : m Thc_sim.Engine.t) ~replicas =
  match setup.scenario with
  | Fault_free -> ()
  | Crash_leader at -> Thc_sim.Engine.schedule_crash engine ~pid:0 ~at
  | Silent_replicas ->
    for i = 0 to setup.f - 1 do
      Thc_sim.Engine.schedule_crash engine ~pid:(replicas - 1 - i) ~at:0L
    done
  | Scripted script ->
    List.iter
      (fun pid ->
        if pid >= replicas then
          invalid_arg "Harness: scripted adversary may only crash replicas")
      (Thc_sim.Adversary.crashed script);
    Thc_sim.Adversary.install script engine

let run_minbft setup =
  let config = Minbft.default_config ~f:setup.f in
  let n = config.n in
  let client_pid = n in
  let rng = Thc_util.Rng.create setup.seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:(n + 1) in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let net = Thc_sim.Net.create ~n:(n + 1) ~default:setup.delay in
  let engine = Thc_sim.Engine.create ~seed:setup.seed ~n:(n + 1) ~net () in
  let states =
    Array.init n (fun self ->
        Minbft.create_replica ~config ~keyring ~world
          ~trinket:(Thc_hardware.Trinc.trinket world ~owner:self)
          ~self)
  in
  Array.iteri
    (fun pid st -> Thc_sim.Engine.set_behavior engine pid (Minbft.replica st))
    states;
  Thc_sim.Engine.set_behavior engine client_pid
    (Minbft.client ~config ~keyring
       ~ident:(Thc_crypto.Keyring.secret keyring ~pid:client_pid)
       ~plan:(plan_of setup));
  apply_scenario setup ~engine ~replicas:n;
  let trace =
    Thc_sim.Engine.run ~until:(horizon setup) ~max_events:20_000_000 engine
  in
  let final_view =
    Array.fold_left (fun acc st -> max acc (Minbft.view_of st)) 0 states
  in
  finish setup ~trace ~replicas:n ~client:client_pid ~final_view
    ~classify:Minbft.classify_msg

let run_pbft setup =
  let config = Pbft.default_config ~f:setup.f in
  let n = config.n in
  let client_pid = n in
  let rng = Thc_util.Rng.create setup.seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:(n + 1) in
  let net = Thc_sim.Net.create ~n:(n + 1) ~default:setup.delay in
  let engine = Thc_sim.Engine.create ~seed:setup.seed ~n:(n + 1) ~net () in
  let states =
    Array.init n (fun self ->
        Pbft.create_replica ~config ~keyring
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid:self)
          ~self)
  in
  Array.iteri
    (fun pid st -> Thc_sim.Engine.set_behavior engine pid (Pbft.replica st))
    states;
  Thc_sim.Engine.set_behavior engine client_pid
    (Pbft.client ~config ~keyring
       ~ident:(Thc_crypto.Keyring.secret keyring ~pid:client_pid)
       ~plan:(plan_of setup));
  apply_scenario setup ~engine ~replicas:n;
  let trace =
    Thc_sim.Engine.run ~until:(horizon setup) ~max_events:20_000_000 engine
  in
  let final_view =
    Array.fold_left (fun acc st -> max acc (Pbft.view_of st)) 0 states
  in
  finish setup ~trace ~replicas:n ~client:client_pid ~final_view
    ~classify:Pbft.classify_msg

let run setup =
  match setup.protocol with
  | Minbft_protocol -> run_minbft setup
  | Pbft_protocol -> run_pbft setup

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>replicas=%d completed=%d msgs=%d (%.1f/op) dur=%Ldµs view=%d@,\
     latency: %a@,safety: %d violation(s), liveness: %d violation(s)@]"
    o.replicas o.completed o.messages o.messages_per_op o.duration_us
    o.final_view Thc_util.Stats.pp_summary o.latency
    (List.length o.safety_violations)
    (List.length o.liveness_violations)
