(** uBFT-style replicated state machine on SWMR shared memory
    (n = 2f+1; after Aguilera et al., "uBFT: Microsecond-Scale BFT using
    Disaggregated Memory").

    The protocol that measures Figure 1's "strictly stronger" edge: SWMR
    registers with ACLs sit {e above} the trusted logs/counters MinBFT
    builds on, and a protocol that exploits them directly needs one fewer
    network phase in the common case.  Each replica owns one
    {!Thc_sharedmem.Swmr.log_array} register that every replica can read;
    the register {e is} the data plane, wire messages are doorbells.

    Normal case: the view's leader packs pending requests into batches,
    appends [Slot(view, seq, batch)] to {e its own} register — one trusted
    register op, after which the slot can no longer be equivocated or
    withdrawn — and broadcasts a tiny [Notify].  Each follower reads the
    leader's register, adopts the first valid [Slot] per sequence number
    (the shared append order makes this resolution identical at every
    reader — non-equivocation for free), appends an [Ack] to its own
    register, executes speculatively in slot order, replies, and rings an
    [Ack_note] doorbell back.  The leader executes a slot only once f+1
    registers cover it (its own Slot plus follower Acks it re-verifies on
    each doorbell), so a view change — which silences f+1 replicas' old-
    view acks — can never strand a leader-executed slot outside
    recovery's reach.  The client quorum is f+1 matching replies, served
    by the 2f speculative followers: three network hops instead of
    MinBFT's request → Prepare → Commit → reply four, which is the
    fault-free p50 gap bench table S6 reports.

    Speculation is kept safe by an evidence rule: before adopting, a
    follower counts registers holding a view-change vote above its view
    and refuses once f+1 carry one.  An activated higher view necessarily
    planted those votes before its leader recovered, so (handlers being
    atomic over linearizable registers) anything adopted under the old
    view is visible to every later recovery.

    Bounded memory (uBFT's distinguishing discipline): every
    [checkpoint_interval] executed slots a replica rewrites its own
    register with the stable prefix pruned, leaving a [Checkpoint]
    marker.  The leader prunes only slots every register covers — a
    replica's ack frontier is also its adoption frontier, so nothing a
    live replica still reads ever disappears.  (Real uBFT truncates at
    f+1 coverage and state-transfers laggards; the sim keeps every
    replica's replay dense instead, at the cost of a crashed replica
    stalling truncation.)

    View change (fallback when the fast path stalls): a replica with a
    timed-out pending request appends [Vc(v+1)] to its register and
    broadcasts an [Rvc] hint; a vote counts only if it sits in the
    voter's own register (ownership is the authentication).  On f+1
    register votes, the new leader reads {e all} registers, recovers per
    sequence number the batch of the highest-view valid [Slot] from that
    view's leader's register, re-publishes the recovery under the new
    view in its own register, and notifies.  Followers verify the f+1
    register votes themselves before switching their read source. *)

type msg

type config = {
  n : int;  (** Replicas (pids 0..n-1); clients live at pids ≥ n. *)
  f : int;  (** Fault bound; requires [n = 2f+1] (checked). *)
  request_timeout : int64;  (** µs before a pending request triggers Rvc. *)
  check_interval : int64;  (** µs between timeout scans. *)
  batch_size : int;
      (** Max requests the leader packs into one Slot; each batch costs a
          single register append, so larger batches amortize register ops. *)
  batch_delay : int64;  (** µs a partial batch waits before being flushed. *)
  checkpoint_interval : int;
      (** Executed slots between register truncations (bounded memory). *)
}

val default_config : f:int -> config

type record
(** What registers hold: slots, acks, view-change votes, checkpoints. *)

type registers = record Thc_sharedmem.Swmr.log array
(** One register per replica, [registers.(i)] owned by [i] — build with
    {!Thc_sharedmem.Swmr.log_array} [~n:(2f+1)] and share the array across
    the cluster (and attach a ledger to it for register-op accounting). *)

type t
(** Replica state, kept by the harness for post-run inspection. *)

val create_replica :
  config:config ->
  keyring:Thc_crypto.Keyring.t ->
  registers:registers ->
  ident:Thc_crypto.Keyring.secret ->
  self:int ->
  t
(** [ident] must be the keyring secret of [self] — it is the write
    capability for [registers.(self)]. *)

val replica : t -> msg Thc_sim.Engine.behavior
(** Emits [Obs.Committed] and [Obs.Executed] per operation. *)

val client :
  rid_base:int ->
  config:config ->
  keyring:Thc_crypto.Keyring.t ->
  ident:Thc_crypto.Keyring.secret ->
  plan:(int64 * Kv_store.op) list ->
  msg Thc_sim.Engine.behavior
(** Sends each planned request to all replicas at its time, waits for f+1
    matching replies, and emits [Obs.Client_done] (see
    {!Client_core.behavior}). *)

val wrap_request : Command.signed_request -> msg

val unwrap_reply : msg -> Command.reply option

val view_of : t -> int
val executed_upto : t -> int
val store_digest : t -> int64

val register_len : t -> int
(** Current length of the replica's own register — what the
    truncate-on-checkpoint discipline keeps bounded.  Costs a trusted
    register read; post-run inspection only. *)

val durability : t -> Durability.stats
(** Register-log durability stats (software shadow counters — spends no
    trusted ops): live entries, high-water-mark, pruned boundary and
    truncation count.  Comparable with {!Minbft.durability}. *)

val classify_msg : msg -> string
(** Short label per wire-message kind (request/notify/...), for
    {!Thc_sim.Metrics.kind_counts} breakdowns. *)

val pp_msg : Format.formatter -> msg -> unit

(** {1 Adversarial surface}

    Register records an attacker may try to plant.  Building one is free;
    {e landing} it requires an append into the target's register, which
    the ACL refuses for any identity but the owner's — the attempts show
    up as [swmr.append_denied] ledger rejections (see {!Thc_byz.Attack}). *)

val forged_slot : view:int -> seq:int -> batch:Command.batch -> record

val forged_ack : view:int -> seq:int -> digest:int64 -> record

val adversarial_notify : view:int -> upto:int -> msg
(** A doorbell for a view the sender does not lead — harmless by itself
    (receivers validate against the register), used to dress up forgery
    attempts. *)

val adversarial_ack_note : view:int -> upto:int -> msg
(** A lying coverage doorbell: claims acks the sender never appended.
    Harmless — the leader re-reads the sender's actual register and
    counts only digest-matching acks. *)
