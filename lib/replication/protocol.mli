(** The one protocol identity.

    Every driver (smr, loadtest, report, attack, trace, soak, bench) names
    the three replication protocols; before this module each kept its own
    constructor set and string map.  This is now the single codec: parse
    with {!of_string}, print with {!to_string}, and take CLI arguments
    through {!conv}.  {!Harness.protocol} is an alias of {!t}, so harness
    setups and CLI flags share constructors directly. *)

type t = Minbft | Pbft | Ubft

val all : t list
(** [[Minbft; Pbft; Ubft]] — catalog order, used for "run everything"
    sweeps and error messages. *)

val to_string : t -> string
(** ["minbft"] / ["pbft"] / ["ubft"] — the names used in exports, CLI
    arguments and bench table rows. *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on anything else. *)

val pp : Format.formatter -> t -> unit

val conv : t Cmdliner.Arg.conv
(** Shared cmdliner converter, so every command's [PROTO] positional and
    [--protocol] flag parses and error-reports identically. *)
