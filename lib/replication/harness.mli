(** One-call experiment runner for the replication comparison (experiment
    S1): same workload, same network, same fault bound — MinBFT (2f+1
    replicas on trusted counters) vs PBFT (3f+1 replicas, pure crypto) vs
    uBFT-sim (2f+1 replicas on SWMR shared-memory registers; its
    trusted-op ledger counts [swmr.*] register operations instead of
    seals/verifies). *)

type protocol = Protocol.t = Minbft | Pbft | Ubft
(** Re-export of {!Protocol.t} — the one protocol identity in the tree.
    Codecs ([to_string]/[of_string]), the catalogue ([all]) and the
    cmdliner converter all live on {!Protocol}. *)

type scenario =
  | Fault_free  (** All replicas correct. *)
  | Crash_leader of int64
      (** The view-0 leader crashes at the given time; measures view-change
          recovery. *)
  | Silent_replicas
      (** f replicas are silent from the start (crash-at-0) — the maximum
          tolerated fault load. *)
  | Scripted of Thc_sim.Adversary.t
      (** Arbitrary timed fault schedule ({!Thc_sim.Adversary.install}).
          Crash victims must be replica pids (the client stays up); the run
          horizon is extended past the script's so the post-heal network has
          room to drain.  Liveness is demanded only when the script crashes
          at most [f] replicas. *)
  | Restart_replica of { pid : int; at : int64 }
      (** Replica [pid] crashes at [at] (µs) and restarts immediately with
          all volatile state lost, rejoining via verified state transfer
          (MinBFT only; see {!Minbft.replica}).  Pick a non-leader pid —
          liveness is still demanded (the other replicas form f+1
          quorums). *)

type setup = {
  protocol : protocol;
  f : int;
  ops : int;  (** Requests per client. *)
  clients : int;  (** Concurrent clients (pids n..n+clients-1; min 1). *)
  batch : int;  (** Leader batch size (requests per consensus slot; min 1). *)
  interval : int64;  (** µs between each client's requests (open loop). *)
  delay : Thc_sim.Delay.t;  (** Link delay distribution. *)
  scenario : scenario;
  seed : int64;
  network : Thc_network.Model.t option;
      (** Named network model ({!Thc_network.Topology} × rational
          strategies) compiled onto the links after the cluster is wired;
          [None] keeps the legacy uniform clique built from [delay], so
          existing runs stay byte-identical.  Under a [Scripted] scenario
          the model is re-lowered after every scripted heal. *)
  checkpoint_interval : int;
      (** Attested-checkpoint cadence in executed slots; [0] disables
          durability (the legacy behavior — traces stay byte-identical).
          Positive values turn on checkpoint certificates, log truncation
          and state transfer for MinBFT, and override uBFT's register
          truncation cadence (uBFT always truncates; PBFT ignores this). *)
}

(** The one construction path for setups.  Optional arguments default to
    the historical literals (ops 25, 1 client, batch 1, 5ms interval,
    uniform 50–500µs links, fault-free, no network model, checkpointing
    off), so [Setup.make ~protocol ~f ~seed ()] reproduces yesterday's
    record literals byte-for-byte — the golden corpus locks this. *)
module Setup : sig
  type t = setup

  val make :
    ?ops:int ->
    ?clients:int ->
    ?batch:int ->
    ?interval:int64 ->
    ?delay:Thc_sim.Delay.t ->
    ?scenario:scenario ->
    ?network:Thc_network.Model.t ->
    ?checkpoint_interval:int ->
    protocol:protocol ->
    f:int ->
    seed:int64 ->
    unit ->
    setup
end

type outcome = {
  replicas : int;
  completed : int;  (** Requests with a client quorum of replies. *)
  commits : int;  (** Distinct sequence numbers committed ({!Smr_spec.commits}). *)
  latency : Thc_util.Stats.summary;  (** Client-observed, µs of virtual time. *)
  lat_hist : Thc_obsv.Metrics.Histogram.t;
      (** Same latencies bucketed for p50/p90/p99 (virtual-time µs). *)
  messages : int;  (** Total messages sent (protocol + client). *)
  messages_per_op : float;
  duration_us : int64;  (** Virtual time until quiescence. *)
  safety_violations : Smr_spec.violation list;
  liveness_violations : Smr_spec.violation list;
  final_view : int;  (** Maximum view among correct replicas at the end. *)
  breakdown : (string * int) list;
      (** Sent messages by kind (prepare/commit/...), descending. *)
  sends_by_replica : (int * int) list;  (** [(pid, sends)], ascending pid. *)
  delivery : Thc_sim.Metrics.delivery_report;
  net : (string * int) list;  (** {!Thc_obsv.Link_stats.rows} of the engine. *)
  trusted_ops : (string * int) list;
      (** Hardware-op ledger rows; empty for PBFT (no trusted component). *)
  trusted_per_commit : float;  (** Total trusted ops / {!commits}; 0 if none. *)
  trusted_per_request : float;
      (** Total trusted ops / {!completed} — the amortization batching buys:
          with batch size b one attestation covers b requests. *)
  latency_by_client : (int * Thc_util.Stats.summary) list;
      (** Per-client-pid latency quantiles, ascending pid. *)
  metrics : Thc_obsv.Metrics.t;
      (** Everything above as one registry — the export's snapshot line. *)
  events : int;
      (** Engine events dispatched ({!Thc_sim.Engine.events_processed}) —
          the numerator of the events/sec throughput metric.  Not folded
          into {!metrics} so existing export bytes are unchanged. *)
  durability : Durability.stats;
      (** Cluster-wide log/checkpoint stats ({!Durability.merge} across
          replicas): max live log, max high-water-mark, min stable
          boundary, total truncations.  All zero for PBFT and for runs
          with [checkpoint_interval = 0] (uBFT reports its register
          discipline regardless).  Folded into {!metrics} as [ckpt.*]
          gauges only when [checkpoint_interval > 0], so legacy exports
          keep their bytes. *)
}

val run : setup -> outcome
(** Build the cluster, run to quiescence (bounded), and collect metrics.
    The client workload is a deterministic mix of puts/gets/incrs. *)

val run_export : setup -> outcome * string
(** Like {!run}, also returning the run's JSONL export: the full trace
    ({!Thc_sim.Trace.to_jsonl} with {!Thc_util.Codec.encode}d messages)
    followed by a [{"type":"metrics",...}] snapshot line and a
    [{"type":"ledger",...}] trusted-op line.  Deterministic per seed. *)

val run_spans :
  setup -> outcome * Thc_obsv.Span.view list * (string * (string * int) list) list
(** Like {!run}, with a {!Thc_obsv.Span} recorder installed on the engine:
    every request becomes a causal span (submit → leader ingress →
    propose → commit round → execute → reply) stamped in virtual time,
    and — for MinBFT — every trusted-hardware ledger bump is attributed
    to the phase it happened in ({!Thc_obsv.Ledger.set_observer}).

    Returns the ordinary outcome, the per-request span views (rid order),
    and the per-phase trusted-op attribution rows
    ({!Thc_obsv.Span.ops_rows}; [[]] for PBFT, which spends no trusted
    ops).  Recording is virtual-time-only: the outcome, trace and export
    are byte-identical to {!run} on the same setup. *)

type lite = {
  l_completed : int;
  l_commits : int;
  l_messages : int;
  l_events : int;
  l_duration_us : int64;
}
(** The throughput-mode reduction: just the counts that define
    events/sec and ops/sec, none of the full metric registry. *)

val run_lite : setup -> lite
(** Same cluster, schedule and RNG draws as {!run} — scheduling is
    bit-identical — but the engine records only Output/Crashed entries
    ({!Thc_sim.Engine.Outputs_only}) and the reduction skips the trace
    folds, so nearly all wall time is simulation.  The measurement mode
    of the S4 engine-throughput benchmarks. *)

val default_workload : ops:int -> seed:int64 -> Kv_store.op list

val pp_outcome : Format.formatter -> outcome -> unit
