type vote = { owner : int; upto : int; digest : int64; exec_count : int }

let quorum ~f = f + 1

let cert_stable ~f votes =
  match votes with
  | [] -> false
  | first :: _ ->
    (* Votes certify the metadata of the first one; distinct owners only. *)
    let owners = Hashtbl.create 8 in
    List.iter
      (fun v ->
        if
          v.upto = first.upto && v.digest = first.digest
          && v.exec_count = first.exec_count
        then Hashtbl.replace owners v.owner ())
      votes;
    Hashtbl.length owners >= quorum ~f

type stats = {
  live : int;
  hwm : int;
  stable_upto : int;
  truncations : int;
}

let zero = { live = 0; hwm = 0; stable_upto = 0; truncations = 0 }

let merge = function
  | [] -> zero
  | first :: rest ->
    List.fold_left
      (fun acc s ->
        {
          live = max acc.live s.live;
          hwm = max acc.hwm s.hwm;
          stable_upto = min acc.stable_upto s.stable_upto;
          truncations = acc.truncations + s.truncations;
        })
      first rest

let rows ~prefix s =
  [
    (prefix ^ ".log_live", s.live);
    (prefix ^ ".log_hwm", s.hwm);
    (prefix ^ ".stable_upto", s.stable_upto);
    (prefix ^ ".truncations", s.truncations);
  ]

let bound ~checkpoint_interval =
  if checkpoint_interval <= 0 then 0 else 2 * checkpoint_interval

let bound_ok ~checkpoint_interval s =
  checkpoint_interval <= 0 || s.hwm <= bound ~checkpoint_interval
