type report = {
  violations : Srb_spec.violation list;
  delivered : int;
  messages : int;
  duration_us : int64;
}

let fast = Thc_sim.Delay.Uniform (10L, 400L)

let finish (type m) (trace : m Thc_sim.Trace.t) =
  let delivered =
    List.fold_left
      (fun acc pid ->
        acc + List.length (Srb_spec.deliveries trace ~sender:0 ~pid))
      0
      (Thc_sim.Trace.correct_pids trace)
  in
  {
    violations = Srb_spec.check trace ~sender:0;
    delivered;
    messages = Thc_sim.Trace.messages_sent trace;
    duration_us = trace.Thc_sim.Trace.end_time;
  }

(* Broadcast times sit in the first quarter of the script horizon so the
   fault schedule has the rest of the run to interfere and then heal. *)
let plan_times ~horizon ~values =
  List.init values (fun i ->
      Int64.add 100L (Int64.mul (Int64.of_int i) (Int64.div horizon (Int64.of_int (4 * values)))))

let run_trinc ?network ~seed ~(script : Thc_sim.Adversary.t) ?(n = 4) ?(values = 3) () =
  let rng = Thc_util.Rng.create seed in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  for pid = 0 to n - 1 do
    let st =
      Srb_from_trinc.create ~world
        ~trinket:(Some (Thc_hardware.Trinc.trinket world ~owner:pid))
        ~n ~self:pid
    in
    let plan =
      if pid = 0 then
        List.mapi
          (fun i at -> (at, Printf.sprintf "m%d" (i + 1)))
          (plan_times ~horizon:script.horizon ~values)
      else []
    in
    Thc_sim.Engine.set_behavior engine pid (Srb_from_trinc.behavior st ~broadcast_plan:plan)
  done;
  Thc_sim.Adversary.install script engine;
  Option.iter
    (fun m -> Thc_network.Model.install m engine ~replicas:n ~script ())
    network;
  let until = Int64.add script.horizon 2_000_000L in
  finish (Thc_sim.Engine.run ~until ~max_events:10_000_000 engine)

let run_uni ?network ~seed ~(script : Thc_sim.Adversary.t) ?(n = 5) ?(faults = 2) ?(values = 2) () =
  let keyring = Thc_crypto.Keyring.create (Thc_util.Rng.create seed) ~n in
  let net = Thc_sim.Net.create ~n ~default:fast in
  let engine = Thc_sim.Engine.create ~seed ~n ~net () in
  let registers = Thc_sharedmem.Swmr.log_array ~n in
  let srbs =
    Array.init n (fun pid ->
        Srb_from_uni.create ~keyring
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
          ~sender:0 ~faults)
  in
  List.iter
    (fun i -> Srb_from_uni.broadcast srbs.(0) (Printf.sprintf "v%d" i))
    (List.init values (fun i -> i + 1));
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_rounds.Swmr_rounds.behavior ~registers
         ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
         (Srb_from_uni.app srbs.(pid)))
  done;
  Thc_sim.Adversary.install script engine;
  Option.iter
    (fun m -> Thc_network.Model.install m engine ~replicas:n ~script ())
    network;
  let until = max 600_000L (Int64.add script.horizon 300_000L) in
  finish (Thc_sim.Engine.run ~until ~max_events:10_000_000 engine)
