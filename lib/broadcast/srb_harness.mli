(** Scripted-fault adapters for the SRB implementations — the broadcast
    layer's entry points into the {!Thc_check} fault explorer.

    Each run builds the usual cluster, installs an {!Thc_sim.Adversary}
    script on top of it, runs past the script's horizon (so every temporary
    partition has healed and held messages have drained), and judges the
    full four-property SRB specification ({!Srb_spec.check}) on the trace.
    The designated sender is process 0. *)

type report = {
  violations : Srb_spec.violation list;
      (** SRB spec violations for sender 0's stream. *)
  delivered : int;
      (** Total deliveries of that stream summed over correct processes. *)
  messages : int;
  duration_us : int64;
}

val run_trinc :
  ?network:Thc_network.Model.t ->
  seed:int64 -> script:Thc_sim.Adversary.t -> ?n:int -> ?values:int -> unit -> report
(** {!Srb_from_trinc} (trusted-log SRB, any [f < n]): sender 0 broadcasts
    [values] (default 3) attested values early in the run; receivers chain
    and echo.  Default [n] = 4.  Crashes and partitions from the script are
    tolerated by construction — the expected verdict is a clean spec.
    [network] lowers a named topology onto the links
    ({!Thc_network.Model.install}, re-lowered after every scripted heal);
    rational client strategies do not apply (there are no clients). *)

val run_uni :
  ?network:Thc_network.Model.t ->
  seed:int64 -> script:Thc_sim.Adversary.t -> ?n:int -> ?faults:int -> ?values:int ->
  unit -> report
(** Algorithm 1 ({!Srb_from_uni}) over SWMR-register rounds, [n] = 5,
    [faults] = 2 by default.  Register operations bypass the message
    network, so only the script's crashes bite — which is itself a property
    worth sweeping: shared-memory rounds shrug off any partition script. *)
