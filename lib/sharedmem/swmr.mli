(** Single-writer multi-reader atomic registers.

    The canonical shared-memory-with-ACL primitive of the paper (§2.1):
    every process may [read] every register; each register has a unique
    owner which is the only process allowed to [write].  Registers are
    linearizable by construction — the simulation engine executes handler
    code atomically, so each operation takes effect at one instant.

    The unidirectional-round protocol (paper §3.2) needs registers whose
    contents {e grow}: the owner "appends (r, m)".  [append] provides
    that pattern directly on a list-valued register.

    Registers can carry a trusted-op ledger ({!attach_ledger}): every
    [read]/[write]/[append] then charges one [swmr.*] ledger op, and an
    {!Acl.Violation} charges a [swmr.<op>_denied] rejection before
    re-raising — so protocols built on shared memory (uBFT-sim) report
    register-ops-per-request next to MinBFT's seal/verify counts, and
    [thc attack] shows blocked register forgeries instead of silence. *)

type 'a t
(** A register holding ['a], with an owner-only write ACL. *)

val create : owner:int -> init:'a -> 'a t

val owner : 'a t -> int

val attach_ledger : 'a t -> Thc_obsv.Ledger.t -> unit
(** Route this register's operation accounting to [ledger]: successful
    ops charge [swmr.read] / [swmr.write] / [swmr.append]; denied writes
    and appends charge [swmr.write_denied] / [swmr.append_denied] (which
    {!Thc_obsv.Ledger.rejections} counts) before the {!Acl.Violation}
    propagates.  Unattached registers (the default) charge nothing. *)

val attach_ledger_all : 'a t array -> Thc_obsv.Ledger.t -> unit
(** {!attach_ledger} over a whole {!array} / {!log_array}. *)

val read : 'a t -> 'a
(** Readable by everyone (no identity needed — reads are unrestricted in the
    paper's setting). *)

val write : 'a t -> ident:Thc_crypto.Keyring.secret -> 'a -> unit
(** Owner-only.  @raise Acl.Violation for any other caller. *)

val write_count : 'a t -> int
(** Number of successful writes (for linearization-order assertions). *)

type 'a log = 'a list t
(** A register used append-only, newest element first. *)

val create_log : owner:int -> 'a log

val append : 'a log -> ident:Thc_crypto.Keyring.secret -> 'a -> unit
(** Owner-only append: pushes [v] as the newest element in one register
    operation (one [swmr.append] ledger charge, one write-count tick).
    @raise Acl.Violation for any caller but the owner. *)

val entries : 'a log -> 'a list
(** Oldest first. *)

val array : n:int -> init:(int -> 'a) -> 'a t array
(** One register per process, [o.(i)] owned by [i] — the standard layout. *)

val log_array : n:int -> 'a log array
