type 'a t = {
  owner : int;
  acl : Acl.t;
  mutable value : 'a;
  mutable writes : int;
  mutable hw : Thc_obsv.Ledger.t option;
}

let create ~owner ~init =
  { owner; acl = Acl.only owner; value = init; writes = 0; hw = None }

let owner t = t.owner

let attach_ledger t ledger = t.hw <- Some ledger

let attach_ledger_all a ledger = Array.iter (fun t -> attach_ledger t ledger) a

let charge t label =
  match t.hw with None -> () | Some hw -> Thc_obsv.Ledger.bump hw label

let read t =
  charge t "swmr.read";
  t.value

let enforce t ~ident ~op =
  try ignore (Acl.enforce t.acl ~ident ~op : int)
  with Acl.Violation _ as e ->
    charge t (Printf.sprintf "swmr.%s_denied" op);
    raise e

let write t ~ident v =
  enforce t ~ident ~op:"write";
  charge t "swmr.write";
  t.value <- v;
  t.writes <- t.writes + 1

let write_count t = t.writes

type 'a log = 'a list t

let create_log ~owner = create ~owner ~init:[]

let append t ~ident v =
  enforce t ~ident ~op:"append";
  charge t "swmr.append";
  t.value <- v :: t.value;
  t.writes <- t.writes + 1

let entries t = List.rev (read t)

let array ~n ~init = Array.init n (fun i -> create ~owner:i ~init:(init i))

let log_array ~n = Array.init n (fun i -> create_log ~owner:i)
