(* Tests for the fault explorer: monitor algebra, deterministic sweeps,
   counterexample shrinking, repro persistence, and the seed corpus. *)

let harness name = Option.get (Thc_check.Harness.find name)

(* --- monitor -------------------------------------------------------------- *)

let v monitor = { Thc_check.Monitor.monitor; info = "x" }

let test_monitor_verdict () =
  Alcotest.(check bool) "empty passes" true
    (Thc_check.Monitor.verdict [] = Thc_check.Monitor.Pass);
  Alcotest.(check bool) "non-empty fails" true
    (Thc_check.Monitor.failed (Thc_check.Monitor.verdict [ v "a" ]))

let test_monitor_primary_and_reproduces () =
  let fail = Thc_check.Monitor.verdict [ v "a"; v "b"; v "a" ] in
  Alcotest.(check (list string))
    "distinct, first occurrence" [ "a"; "b" ]
    (Thc_check.Monitor.monitors_of fail);
  Alcotest.(check (option string)) "primary" (Some "a")
    (Thc_check.Monitor.primary fail);
  Alcotest.(check bool) "same primary reproduces" true
    (Thc_check.Monitor.reproduces ~reference:fail
       (Thc_check.Monitor.verdict [ v "a" ]));
  Alcotest.(check bool) "secondary alone does not" false
    (Thc_check.Monitor.reproduces ~reference:fail
       (Thc_check.Monitor.verdict [ v "b" ]));
  Alcotest.(check bool) "pass reference needs pass" true
    (Thc_check.Monitor.reproduces ~reference:Thc_check.Monitor.Pass
       Thc_check.Monitor.Pass);
  Alcotest.(check bool) "pass reference rejects failure" false
    (Thc_check.Monitor.reproduces ~reference:Thc_check.Monitor.Pass
       (Thc_check.Monitor.verdict [ v "a" ]))

(* --- sweeps --------------------------------------------------------------- *)

(* Small fixed-seed smoke sweeps; budgets come from each harness profile, so
   these exercise exactly what `dune runtest` promises about the registry. *)
let clean_smoke = [ ("minbft", 8); ("pbft", 6); ("srb-trinc", 6); ("srb-uni", 8); ("agreement", 10) ]

let test_clean_protocols_pass_smoke_sweep () =
  List.iter
    (fun (name, runs) ->
      let s = Thc_check.Sweep.sweep (harness name) ~base_seed:1L ~runs () in
      if s.Thc_check.Sweep.failures <> [] then
        Alcotest.failf "%s: %d unexpected failures in %d runs" name
          (List.length s.Thc_check.Sweep.failures)
          runs)
    clean_smoke

let test_broken_protocol_fails_smoke_sweep () =
  let s =
    Thc_check.Sweep.sweep (harness "minbft-unattested") ~base_seed:1L ~runs:8 ()
  in
  Alcotest.(check bool) "ablated protocol forks" true
    (s.Thc_check.Sweep.failures <> []);
  Alcotest.(check (option string))
    "fails the safety monitor" (Some "smr-safety")
    (match s.Thc_check.Sweep.by_monitor with (m, _) :: _ -> Some m | [] -> None)

let test_sweep_deterministic () =
  let render () =
    let s = Thc_check.Sweep.sweep (harness "minbft") ~base_seed:1L ~runs:20 () in
    Format.asprintf "%a" Thc_check.Sweep.pp_summary s
  in
  Alcotest.(check string) "two sweeps render identically" (render ()) (render ())

let test_budget_overrides () =
  (* Overriding both budgets to zero yields empty scripts everywhere. *)
  let h = harness "minbft" in
  for seed = 1 to 10 do
    let script =
      Thc_check.Sweep.script_for h ~crashes:0 ~partitions:0
        ~seed:(Int64.of_int seed) ()
    in
    Alcotest.(check (list unit)) "no events" []
      (List.map ignore script.Thc_sim.Adversary.events)
  done

(* --- shrinking ------------------------------------------------------------ *)

let failing_unattested_outcome () =
  (* Seed 3's random script includes masking noise around the baked-in
     equivocation — exactly what shrinking should strip. *)
  let o = Thc_check.Sweep.run_one (harness "minbft-unattested") ~seed:3L () in
  if not (Thc_check.Monitor.failed o.Thc_check.Sweep.report.Thc_check.Harness.verdict)
  then Alcotest.fail "expected seed 3 to fail on the ablated protocol";
  o

let test_shrink_preserves_failure () =
  let h = harness "minbft-unattested" in
  let o = failing_unattested_outcome () in
  let r =
    Thc_check.Shrink.shrink h ~seed:o.Thc_check.Sweep.seed
      ~script:o.Thc_check.Sweep.script ~report:o.Thc_check.Sweep.report ()
  in
  Alcotest.(check bool) "shrunk script still fails the same monitor" true
    (Thc_check.Monitor.reproduces
       ~reference:o.Thc_check.Sweep.report.Thc_check.Harness.verdict
       r.Thc_check.Shrink.report.Thc_check.Harness.verdict);
  Alcotest.(check bool) "no larger than the original" true
    (List.length r.Thc_check.Shrink.script.Thc_sim.Adversary.events
    <= List.length o.Thc_check.Sweep.script.Thc_sim.Adversary.events);
  (* The equivocation needs no network help: the counterexample collapses
     to (almost) nothing. *)
  Alcotest.(check bool) "collapses below five events" true
    (List.length r.Thc_check.Shrink.script.Thc_sim.Adversary.events <= 5)

let test_shrink_idempotent () =
  let h = harness "minbft-unattested" in
  let o = failing_unattested_outcome () in
  let r1 =
    Thc_check.Shrink.shrink h ~seed:o.Thc_check.Sweep.seed
      ~script:o.Thc_check.Sweep.script ~report:o.Thc_check.Sweep.report ()
  in
  let r2 =
    Thc_check.Shrink.shrink h ~seed:o.Thc_check.Sweep.seed
      ~script:r1.Thc_check.Shrink.script ~report:r1.Thc_check.Shrink.report ()
  in
  Alcotest.(check bool) "re-shrinking a minimum is the identity" true
    (Thc_sim.Adversary.equal r1.Thc_check.Shrink.script
       r2.Thc_check.Shrink.script);
  Alcotest.(check int) "and runs a single fruitless round" 1
    r2.Thc_check.Shrink.rounds

let test_shrink_rejects_passing_report () =
  let h = harness "minbft" in
  let o = Thc_check.Sweep.run_one h ~seed:1L () in
  match
    Thc_check.Shrink.shrink h ~seed:o.Thc_check.Sweep.seed
      ~script:o.Thc_check.Sweep.script ~report:o.Thc_check.Sweep.report ()
  with
  | _ -> Alcotest.fail "accepted a passing report"
  | exception Invalid_argument _ -> ()

(* --- repro files ---------------------------------------------------------- *)

let test_repro_sexp_roundtrip () =
  let o = failing_unattested_outcome () in
  let repro = Thc_check.Repro.of_outcome ~protocol:"minbft-unattested" o in
  let back = Thc_check.Repro.of_sexp (Thc_check.Repro.to_sexp repro) in
  Alcotest.(check bool) "round-trips" true
    (back.Thc_check.Repro.protocol = repro.Thc_check.Repro.protocol
    && back.Thc_check.Repro.seed = repro.Thc_check.Repro.seed
    && back.Thc_check.Repro.expect = repro.Thc_check.Repro.expect
    && Thc_sim.Adversary.equal back.Thc_check.Repro.script
         repro.Thc_check.Repro.script)

let test_repro_save_load () =
  let o = failing_unattested_outcome () in
  let repro = Thc_check.Repro.of_outcome ~protocol:"minbft-unattested" o in
  let path = Filename.temp_file "thc-repro" ".sexp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Thc_check.Repro.save path repro;
      match Thc_check.Repro.load path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok back ->
        Alcotest.(check bool) "file round-trips" true
          (back.Thc_check.Repro.expect = repro.Thc_check.Repro.expect
          && Thc_sim.Adversary.equal back.Thc_check.Repro.script
               repro.Thc_check.Repro.script))

let test_repro_unknown_protocol () =
  let r =
    {
      Thc_check.Repro.protocol = "no-such-protocol";
      seed = 1L;
      expect = `Pass;
      script = { Thc_sim.Adversary.events = []; horizon = 1L };
    }
  in
  match Thc_check.Repro.replay r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replayed an unknown protocol"

(* --- corpus --------------------------------------------------------------- *)

(* `dune runtest` runs the suite from the test build directory; `dune exec
   test/test_check.exe` from the project root — accept either. *)
let corpus_dir () =
  List.find_opt Sys.file_exists
    [ "corpus"; Filename.concat "test" "corpus";
      Filename.concat (Filename.dirname Sys.executable_name) "corpus" ]

let corpus_files () =
  match corpus_dir () with
  | None -> []
  | Some dir ->
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sexp")
    |> List.sort compare
    |> List.map (Filename.concat dir)

let test_corpus_nonempty () =
  Alcotest.(check bool) "corpus has entries" true (corpus_files () <> [])

let test_corpus_replays () =
  List.iter
    (fun file ->
      match Thc_check.Repro.load file with
      | Error msg -> Alcotest.failf "%s: %s" file msg
      | Ok repro -> (
        match Thc_check.Repro.replay repro with
        | Error msg -> Alcotest.failf "%s: %s" file msg
        | Ok r ->
          if not r.Thc_check.Repro.matched then
            Alcotest.failf "%s: %a" file Thc_check.Repro.pp_replay r))
    (corpus_files ())

let () =
  Alcotest.run "thc_check"
    [
      ( "monitor",
        [
          Alcotest.test_case "verdict" `Quick test_monitor_verdict;
          Alcotest.test_case "primary/reproduces" `Quick
            test_monitor_primary_and_reproduces;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "clean protocols pass" `Quick
            test_clean_protocols_pass_smoke_sweep;
          Alcotest.test_case "ablated protocol fails" `Quick
            test_broken_protocol_fails_smoke_sweep;
          Alcotest.test_case "deterministic" `Quick test_sweep_deterministic;
          Alcotest.test_case "budget overrides" `Quick test_budget_overrides;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "preserves failure" `Quick test_shrink_preserves_failure;
          Alcotest.test_case "idempotent" `Quick test_shrink_idempotent;
          Alcotest.test_case "rejects passing report" `Quick
            test_shrink_rejects_passing_report;
        ] );
      ( "repro",
        [
          Alcotest.test_case "sexp roundtrip" `Quick test_repro_sexp_roundtrip;
          Alcotest.test_case "save/load" `Quick test_repro_save_load;
          Alcotest.test_case "unknown protocol" `Quick test_repro_unknown_protocol;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "non-empty" `Quick test_corpus_nonempty;
          Alcotest.test_case "replays to documented verdicts" `Quick
            test_corpus_replays;
        ] );
    ]
