(* Tests for the telemetry layer: JSON codec, histogram quantiles, the
   trusted-op ledger, and the JSONL trace export round trip. *)

module J = Thc_obsv.Json
module M = Thc_obsv.Metrics

(* --- json ---------------------------------------------------------------------- *)

let test_json_roundtrip_values () =
  let check v =
    match J.parse (J.to_string v) with
    | Ok v' -> Alcotest.(check bool) "round trip" true (J.equal v v')
    | Error e -> Alcotest.fail ("parse failed: " ^ e)
  in
  check J.Null;
  check (J.Bool true);
  check (J.Int (-42));
  check (J.Str "plain");
  check (J.Str "quotes \" and \\ and\nnewlines\tand \x00\x1b\xff bytes");
  check (J.List [ J.Int 1; J.Str "x"; J.Null ]);
  check
    (J.Obj
       [ ("a", J.Int 1); ("b", J.List [ J.Bool false ]);
         ("nested", J.Obj [ ("c", J.Str "v") ]) ])

let test_json_arbitrary_bytes () =
  (* Codec payloads are arbitrary bytes; the \u00XX escaping must fold back
     to the identical string. *)
  let s = String.init 256 Char.chr in
  (match J.parse (J.to_string (J.Str s)) with
  | Ok (J.Str s') -> Alcotest.(check string) "all 256 bytes survive" s s'
  | Ok _ -> Alcotest.fail "wrong constructor"
  | Error e -> Alcotest.fail e);
  let enc = Thc_util.Codec.encode (3, "payload", [ 1L; 2L ]) in
  match J.parse (J.to_string (J.Str enc)) with
  | Ok (J.Str enc') ->
    let x, y, z = Thc_util.Codec.decode enc' in
    Alcotest.(check int) "codec int survives" 3 x;
    Alcotest.(check string) "codec string survives" "payload" y;
    Alcotest.(check (list int64)) "codec list survives" [ 1L; 2L ] z
  | Ok _ -> Alcotest.fail "wrong constructor"
  | Error e -> Alcotest.fail e

let test_json_malformed_input_is_error () =
  (* Every malformed input must come back as [Error], never an escaped
     exception — report tooling reads JSONL written by interrupted runs. *)
  let expect_error label text =
    match J.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s parsed" label
    | exception e ->
      Alcotest.failf "%s escaped with %s" label (Printexc.to_string e)
  in
  expect_error "truncated object" {|{"type":"cell","seed":1,"commi|};
  expect_error "truncated string" {|"unterminated|};
  expect_error "truncated \\u escape" {|"\u00|};
  expect_error "non-hex \\u escape" {|"\u00zz"|};
  expect_error "bare garbage" "}{";
  expect_error "trailing garbage" {|{"a":1} extra|}

(* --- histogram ----------------------------------------------------------------- *)

let test_histogram_exact_quantiles () =
  let h = M.Histogram.create () in
  List.iter (M.Histogram.record h) [ 5L; 15L; 100L; 1_000L; 1_342L ];
  Alcotest.(check int) "count" 5 (M.Histogram.count h);
  Alcotest.(check int64) "sum" 2_462L (M.Histogram.sum h);
  (* Rank 3 of 5 lands in the <=100 bucket. *)
  Alcotest.(check (option int64)) "p50" (Some 100L) (M.Histogram.p50 h);
  (* Ranks 5 land in the <=2000 bucket but clamp to the recorded max. *)
  Alcotest.(check (option int64)) "p90 clamps to max" (Some 1_342L)
    (M.Histogram.p90 h);
  Alcotest.(check (option int64)) "p99 clamps to max" (Some 1_342L)
    (M.Histogram.p99 h);
  Alcotest.(check (option int64)) "min" (Some 5L) (M.Histogram.min h);
  Alcotest.(check (option int64)) "max" (Some 1_342L) (M.Histogram.max h)

let test_histogram_overflow_bucket () =
  let h = M.Histogram.create () in
  M.Histogram.record h 99_999_999L;
  (* above the 10 s top bound *)
  Alcotest.(check (option int64)) "overflow reports exact max"
    (Some 99_999_999L) (M.Histogram.p50 h)

let test_histogram_empty () =
  let h = M.Histogram.create () in
  Alcotest.(check int) "count" 0 (M.Histogram.count h);
  Alcotest.(check (option int64)) "p50" None (M.Histogram.p50 h);
  Alcotest.(check (option int64)) "p99" None (M.Histogram.p99 h);
  Alcotest.(check (option int64)) "min" None (M.Histogram.min h);
  Alcotest.(check (option int64)) "max" None (M.Histogram.max h)

let test_histogram_bad_buckets () =
  (match M.Histogram.create ~buckets:[||] () with
  | _ -> Alcotest.fail "empty buckets accepted"
  | exception Invalid_argument _ -> ());
  match M.Histogram.create ~buckets:[| 10L; 10L |] () with
  | _ -> Alcotest.fail "non-increasing buckets accepted"
  | exception Invalid_argument _ -> ()

let test_histogram_p999_and_mean () =
  let h = M.Histogram.create () in
  Alcotest.(check (option int64)) "empty p999" None (M.Histogram.p999 h);
  Alcotest.(check bool) "empty mean" true (M.Histogram.mean h = None);
  List.iter (M.Histogram.record h) [ 10L; 20L; 30L; 40L ];
  Alcotest.(check (option int64)) "p999 clamps to recorded max" (Some 40L)
    (M.Histogram.p999 h);
  match M.Histogram.mean h with
  | Some m -> Alcotest.(check (float 1e-9)) "mean is exact, not bucketed" 25.0 m
  | None -> Alcotest.fail "mean missing on non-empty histogram"

(* --- spans --------------------------------------------------------------------- *)

module S = Thc_obsv.Span

let test_span_marks_first_win () =
  let t = S.create () in
  S.mark t ~client:7 ~rid:1 S.Submit ~at:100L;
  (* Re-deliveries and duplicate quorums must not move a mark — nor
     overwrite the identity fields learned first. *)
  S.mark t ~client:9 ~rid:1 S.Submit ~at:250L;
  S.mark t ~rid:1 ~seq:3 S.Propose ~at:400L;
  S.mark t ~rid:1 ~seq:5 S.Propose ~at:500L;
  S.mark t ~rid:1 S.Reply_done ~at:900L;
  match S.views t with
  | [ v ] ->
    Alcotest.(check int) "client first wins" 7 v.S.v_client;
    Alcotest.(check int) "seq first wins" 3 v.S.v_seq;
    Alcotest.(check (option int64)) "total latency" (Some 800L)
      (S.total_latency v);
    Alcotest.(check bool) "complete" true (S.complete v);
    (match S.last_mark v with
    | Some (name, at) ->
      Alcotest.(check string) "last mark name" "done" name;
      Alcotest.(check int64) "last mark time" 900L at
    | None -> Alcotest.fail "no last mark")
  | vs -> Alcotest.failf "expected one view, got %d" (List.length vs)

let test_span_incomplete_last_mark () =
  let t = S.create () in
  S.mark t ~rid:2 S.Ingress ~at:50L;
  S.mark t ~rid:2 S.Propose ~at:80L;
  let v = List.hd (S.views t) in
  Alcotest.(check bool) "incomplete" false (S.complete v);
  Alcotest.(check (option int64)) "no total latency" None (S.total_latency v);
  (match S.last_mark v with
  | Some ("propose", 80L) -> ()
  | _ -> Alcotest.fail "last mark should be propose at 80");
  let blank = { v with S.v_marks = Array.make 7 (-1L) } in
  Alcotest.(check bool) "no marks at all" true (S.last_mark blank = None)

let test_span_attribution_nesting () =
  let t = S.create () in
  S.in_phase t S.Prepare_phase ~rids:[ 1; 2 ] (fun () ->
      S.attribute t "attest" 1;
      S.in_phase t S.Commit_phase ~rids:[ 2 ] (fun () ->
          S.attribute t "check" 2);
      (* back in the outer scope after the nested one exits *)
      S.attribute t "attest" 1);
  (* an exception must restore the outer (no-phase) scope *)
  (try S.in_phase t S.Execute_phase ~rids:[ 1 ] (fun () -> failwith "boom")
   with Failure _ -> ());
  S.attribute t "stray" 5;
  (match S.ops_rows t with
  | [
   ("prepare", [ ("attest", 2) ]);
   ("commit", [ ("check", 2) ]);
   ("other", [ ("stray", 5) ]);
  ] ->
    ()
  | rows -> Alcotest.failf "unexpected ops rows (%d)" (List.length rows));
  match S.views t with
  | [ v1; v2 ] ->
    (* phase indices: 2 = prepare, 3 = commit *)
    Alcotest.(check int) "rid 1 charged for prepare" 2 v1.S.v_ops.(2);
    Alcotest.(check int) "rid 1 not in commit scope" 0 v1.S.v_ops.(3);
    Alcotest.(check int) "rid 2 charged for both" 2 v2.S.v_ops.(3)
  | vs -> Alcotest.failf "expected two spans, got %d" (List.length vs)

let test_span_merge_ops () =
  let a = [ ("prepare", [ ("attest", 1); ("check", 2) ]) ] in
  let b = [ ("prepare", [ ("check", 3) ]); ("other", [ ("probe", 1) ]) ] in
  match S.merge_ops [ a; b ] with
  | [ ("prepare", [ ("attest", 1); ("check", 5) ]); ("other", [ ("probe", 1) ]) ]
    ->
    ()
  | _ -> Alcotest.fail "merge_ops must sum pointwise in phase order"

let test_span_json_roundtrip () =
  let t = S.create () in
  S.mark t ~client:3 ~rid:11 S.Submit ~at:10L;
  S.mark t ~rid:11 ~seq:2 S.Propose ~at:40L;
  S.mark t ~rid:11 S.Reply_done ~at:90L;
  S.in_phase t S.Prepare_phase ~rids:[ 11 ] (fun () ->
      S.attribute t "attest" 4);
  (* incomplete span with no client/seq: the Null/omitted-field paths *)
  S.mark t ~rid:12 S.Ingress ~at:15L;
  List.iter
    (fun v ->
      match S.view_of_json (S.view_to_json v) with
      | Some v' -> Alcotest.(check bool) "view round trips" true (v = v')
      | None -> Alcotest.fail "view_of_json rejected its own encoding")
    (S.views t)

let test_span_nop_and_summary () =
  Alcotest.(check bool) "nop is disabled" false (S.enabled S.nop);
  S.mark S.nop ~rid:1 S.Submit ~at:5L;
  S.in_phase S.nop S.Prepare_phase ~rids:[ 1 ] (fun () ->
      S.attribute S.nop "x" 9);
  Alcotest.(check bool) "nop records no spans" true (S.views S.nop = []);
  Alcotest.(check bool) "nop records no ops" true (S.ops_rows S.nop = []);
  let t = S.create () in
  List.iter
    (fun (rid, at) ->
      S.mark t ~rid S.Submit ~at:0L;
      S.mark t ~rid S.Ingress ~at;
      S.mark t ~rid S.Reply_done ~at)
    [ (1, 100L); (2, 300L); (3, 200L) ];
  let sum = S.summarize (S.views t) in
  Alcotest.(check int) "spans total" 3 sum.S.spans_total;
  Alcotest.(check int) "spans complete" 3 sum.S.spans_complete;
  match sum.S.rows with
  | [ r ] ->
    (* only the submit phase was traversed; untraversed phases are omitted *)
    Alcotest.(check string) "phase" "submit" r.S.p_name;
    Alcotest.(check int) "count" 3 r.S.p_count;
    Alcotest.(check (option int64)) "max" (Some 300L) r.S.p_max
  | rows -> Alcotest.failf "expected one phase row, got %d" (List.length rows)

let test_span_critical_path_and_slowest () =
  let t = S.create () in
  let mk rid ~ingress ~done_ =
    S.mark t ~rid S.Submit ~at:0L;
    S.mark t ~rid S.Ingress ~at:ingress;
    S.mark t ~rid S.Executed ~at:ingress;
    S.mark t ~rid S.Reply_done ~at:done_
  in
  mk 1 ~ingress:40L ~done_:100L;
  mk 2 ~ingress:10L ~done_:300L;
  mk 3 ~ingress:10L ~done_:300L;
  (match S.slowest ~top:2 (S.views t) with
  | [ a; b ] ->
    Alcotest.(check int) "slowest first" 2 a.S.v_rid;
    Alcotest.(check int) "tie breaks toward lower rid" 3 b.S.v_rid
  | _ -> Alcotest.fail "slowest shape");
  let v1 = List.hd (S.views t) in
  match S.critical_path v1 with
  | [ ("reply", 60L, s1); ("submit", 40L, s2) ] ->
    Alcotest.(check (float 1e-9)) "reply share" 0.6 s1;
    Alcotest.(check (float 1e-9)) "submit share" 0.4 s2
  | _ -> Alcotest.fail "critical path: largest phase first, with shares"

(* --- throughput ---------------------------------------------------------------- *)

let test_throughput_zero_elapsed_clamp () =
  let module T = Thc_obsv.Throughput in
  (* Sub-resolution timings must clamp the denominator, not divide by ~0. *)
  let s = T.summarize [ { T.events = 1000; ops = 10; elapsed_s = 0.0 } ] in
  Alcotest.(check bool) "mean rate finite" true (Float.is_finite s.T.ev_s_mean);
  Alcotest.(check bool) "mean clamps to the 1us floor" true
    (s.T.ev_s_mean = 1000. /. T.min_elapsed_s);
  Alcotest.(check bool) "per-sample min clamps too" true
    (s.T.ev_s_min = 1000. /. T.min_elapsed_s);
  (* Zero work stays exactly zero instead of 0/0. *)
  let z = T.summarize [ { T.events = 0; ops = 0; elapsed_s = 0.0 } ] in
  Alcotest.(check (float 0.)) "no events, zero rate" 0.0 z.T.ev_s_mean;
  Alcotest.(check (float 0.)) "no ops, zero rate" 0.0 z.T.ops_s_mean;
  match T.summarize [] with
  | _ -> Alcotest.fail "empty sample list accepted"
  | exception Invalid_argument _ -> ()

(* --- registry ------------------------------------------------------------------ *)

let test_registry_snapshot () =
  let t = M.create () in
  let c = M.counter t "b.counter" in
  M.incr c;
  M.add c 4;
  let g = M.gauge t "a.gauge" in
  M.set_gauge g 7;
  M.set_gauge g 3;
  let h = M.histogram t "c.hist" in
  M.Histogram.record h 25L;
  (match M.snapshot t with
  | [ ("a.gauge", M.Level { last = 3; hwm = 7 });
      ("b.counter", M.Count 5);
      ("c.hist", M.Summary { count = 1; _ }) ] -> ()
  | _ -> Alcotest.fail "snapshot not sorted or wrong values");
  (* Same name returns the same metric; a kind clash raises. *)
  M.incr (M.counter t "b.counter");
  Alcotest.(check int) "shared counter" 6 (M.counter_value c);
  match M.gauge t "b.counter" with
  | _ -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ()

(* --- ledger -------------------------------------------------------------------- *)

let test_ledger_per_commit () =
  let l = Thc_obsv.Ledger.create () in
  Thc_obsv.Ledger.bump l "trinc.attest";
  Thc_obsv.Ledger.bump_by l "trinc.check" 9;
  Alcotest.(check int) "total" 10 (Thc_obsv.Ledger.total l);
  Alcotest.(check (list (pair string int))) "rows sorted"
    [ ("trinc.attest", 1); ("trinc.check", 9) ]
    (Thc_obsv.Ledger.rows l);
  (match Thc_obsv.Ledger.per_commit l ~commits:5 with
  | [ ("trinc.attest", r1); ("trinc.check", r2) ] ->
    Alcotest.(check (float 1e-9)) "attest rate" 0.2 r1;
    Alcotest.(check (float 1e-9)) "check rate" 1.8 r2
  | _ -> Alcotest.fail "per_commit shape");
  match Thc_obsv.Ledger.per_commit l ~commits:0 with
  | [ (_, 0.0); (_, 0.0) ] -> ()
  | _ -> Alcotest.fail "zero commits must give zero rates"

(* --- trace export -------------------------------------------------------------- *)

let test_trace_jsonl_roundtrip_law () =
  (* of_jsonl (to_jsonl ~encode_msg t) = Ok (map_msg encode_msg t) on a
     trace with holds, drops and crashes. *)
  let n = 3 in
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Const 100L) in
  let engine = Thc_sim.Engine.create ~seed:9L ~n ~net () in
  let b : string Thc_sim.Engine.behavior =
    {
      init =
        (fun ctx ->
          ctx.broadcast (Printf.sprintf "hello-%d" ctx.self);
          ctx.set_timer ~delay:10L ~tag:1;
          ctx.output (Thc_sim.Obs.Note "boot"));
      on_message = (fun _ ~src:_ _ -> ());
      on_timer = (fun _ _ -> ());
    }
  in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid b
  done;
  Thc_sim.Engine.set_link engine ~src:0 ~dst:1 Thc_sim.Net.Block;
  Thc_sim.Engine.set_link engine ~src:0 ~dst:2 Thc_sim.Net.Drop;
  Thc_sim.Engine.schedule_crash engine ~pid:2 ~at:50L;
  let trace = Thc_sim.Engine.run ~until:1_000L engine in
  let encode_msg = Thc_util.Codec.encode in
  let exported = Thc_sim.Trace.to_jsonl ~encode_msg trace in
  match Thc_sim.Trace.of_jsonl exported with
  | Error e -> Alcotest.fail ("of_jsonl: " ^ e)
  | Ok back ->
    Alcotest.(check bool) "round-trip law" true
      (back = Thc_sim.Trace.map_msg encode_msg trace)

let test_replication_export_roundtrip () =
  (* A real MinBFT run: the harness export must parse back to the run's
     trace and carry a metrics snapshot plus a trusted-op ledger line. *)
  let outcome, export =
    Thc_replication.Harness.run_export
      (Thc_replication.Harness.Setup.make
         ~protocol:Thc_replication.Harness.Minbft ~f:1 ~ops:5 ~seed:3L ())
  in
  (match Thc_sim.Trace.of_jsonl export with
  | Error e -> Alcotest.fail ("of_jsonl: " ^ e)
  | Ok trace ->
    Alcotest.(check int) "sends survive the round trip" outcome.messages
      (Thc_sim.Trace.messages_sent trace);
    Alcotest.(check int) "n survives" outcome.replicas (trace.Thc_sim.Trace.n - 1));
  let lines = String.split_on_char '\n' export in
  let typed ty line =
    match J.parse line with
    | Ok j -> J.member "type" j = Some (J.Str ty)
    | Error _ -> false
  in
  (match List.find_opt (typed "metrics") lines with
  | None -> Alcotest.fail "no metrics line in export"
  | Some line ->
    let j = Result.get_ok (J.parse line) in
    let snap = Option.get (J.member "snapshot" j) in
    (match Option.bind (J.member "commit.count" snap) (J.member "value") with
    | Some (J.Int c) -> Alcotest.(check int) "commit count" outcome.commits c
    | _ -> Alcotest.fail "commit.count missing from snapshot"));
  match List.find_opt (typed "ledger") lines with
  | None -> Alcotest.fail "no ledger line in export"
  | Some line ->
    let j = Result.get_ok (J.parse line) in
    (match J.member "commits" j with
    | Some (J.Int c) -> Alcotest.(check int) "ledger commits" outcome.commits c
    | _ -> Alcotest.fail "ledger commits missing");
    (match Option.bind (J.member "ops" j) (J.member "trinc.attest") with
    | Some (J.Int a) -> Alcotest.(check bool) "attests charged" true (a > 0)
    | _ -> Alcotest.fail "trinc.attest missing from ledger line")

let test_export_deterministic () =
  let run () =
    snd
      (Thc_replication.Harness.run_export
         (Thc_replication.Harness.Setup.make
            ~protocol:Thc_replication.Harness.Minbft ~f:1 ~ops:5 ~seed:3L ()))
  in
  Alcotest.(check string) "same seed, byte-identical export" (run ()) (run ())

let () =
  Alcotest.run "thc_obsv"
    [
      ( "json",
        [
          Alcotest.test_case "value round trips" `Quick test_json_roundtrip_values;
          Alcotest.test_case "arbitrary bytes" `Quick test_json_arbitrary_bytes;
          Alcotest.test_case "malformed input is Error" `Quick
            test_json_malformed_input_is_error;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "exact quantiles" `Quick test_histogram_exact_quantiles;
          Alcotest.test_case "overflow bucket" `Quick test_histogram_overflow_bucket;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
          Alcotest.test_case "p999 and mean" `Quick test_histogram_p999_and_mean;
        ] );
      ( "span",
        [
          Alcotest.test_case "marks: first write wins" `Quick
            test_span_marks_first_win;
          Alcotest.test_case "incomplete span last mark" `Quick
            test_span_incomplete_last_mark;
          Alcotest.test_case "attribution scopes nest" `Quick
            test_span_attribution_nesting;
          Alcotest.test_case "merge_ops sums pointwise" `Quick
            test_span_merge_ops;
          Alcotest.test_case "json round trip" `Quick test_span_json_roundtrip;
          Alcotest.test_case "nop recorder and summary" `Quick
            test_span_nop_and_summary;
          Alcotest.test_case "critical path and slowest" `Quick
            test_span_critical_path_and_slowest;
        ] );
      ( "throughput",
        [
          Alcotest.test_case "zero-elapsed clamp" `Quick
            test_throughput_zero_elapsed_clamp;
        ] );
      ("registry", [ Alcotest.test_case "snapshot" `Quick test_registry_snapshot ]);
      ("ledger", [ Alcotest.test_case "per commit" `Quick test_ledger_per_commit ]);
      ( "export",
        [
          Alcotest.test_case "jsonl round-trip law" `Quick
            test_trace_jsonl_roundtrip_law;
          Alcotest.test_case "replication export" `Quick
            test_replication_export_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_export_deterministic;
        ] );
    ]
