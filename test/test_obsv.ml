(* Tests for the telemetry layer: JSON codec, histogram quantiles, the
   trusted-op ledger, and the JSONL trace export round trip. *)

module J = Thc_obsv.Json
module M = Thc_obsv.Metrics

(* --- json ---------------------------------------------------------------------- *)

let test_json_roundtrip_values () =
  let check v =
    match J.parse (J.to_string v) with
    | Ok v' -> Alcotest.(check bool) "round trip" true (J.equal v v')
    | Error e -> Alcotest.fail ("parse failed: " ^ e)
  in
  check J.Null;
  check (J.Bool true);
  check (J.Int (-42));
  check (J.Str "plain");
  check (J.Str "quotes \" and \\ and\nnewlines\tand \x00\x1b\xff bytes");
  check (J.List [ J.Int 1; J.Str "x"; J.Null ]);
  check
    (J.Obj
       [ ("a", J.Int 1); ("b", J.List [ J.Bool false ]);
         ("nested", J.Obj [ ("c", J.Str "v") ]) ])

let test_json_arbitrary_bytes () =
  (* Codec payloads are arbitrary bytes; the \u00XX escaping must fold back
     to the identical string. *)
  let s = String.init 256 Char.chr in
  (match J.parse (J.to_string (J.Str s)) with
  | Ok (J.Str s') -> Alcotest.(check string) "all 256 bytes survive" s s'
  | Ok _ -> Alcotest.fail "wrong constructor"
  | Error e -> Alcotest.fail e);
  let enc = Thc_util.Codec.encode (3, "payload", [ 1L; 2L ]) in
  match J.parse (J.to_string (J.Str enc)) with
  | Ok (J.Str enc') ->
    let x, y, z = Thc_util.Codec.decode enc' in
    Alcotest.(check int) "codec int survives" 3 x;
    Alcotest.(check string) "codec string survives" "payload" y;
    Alcotest.(check (list int64)) "codec list survives" [ 1L; 2L ] z
  | Ok _ -> Alcotest.fail "wrong constructor"
  | Error e -> Alcotest.fail e

let test_json_malformed_input_is_error () =
  (* Every malformed input must come back as [Error], never an escaped
     exception — report tooling reads JSONL written by interrupted runs. *)
  let expect_error label text =
    match J.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s parsed" label
    | exception e ->
      Alcotest.failf "%s escaped with %s" label (Printexc.to_string e)
  in
  expect_error "truncated object" {|{"type":"cell","seed":1,"commi|};
  expect_error "truncated string" {|"unterminated|};
  expect_error "truncated \\u escape" {|"\u00|};
  expect_error "non-hex \\u escape" {|"\u00zz"|};
  expect_error "bare garbage" "}{";
  expect_error "trailing garbage" {|{"a":1} extra|}

(* --- histogram ----------------------------------------------------------------- *)

let test_histogram_exact_quantiles () =
  let h = M.Histogram.create () in
  List.iter (M.Histogram.record h) [ 5L; 15L; 100L; 1_000L; 1_342L ];
  Alcotest.(check int) "count" 5 (M.Histogram.count h);
  Alcotest.(check int64) "sum" 2_462L (M.Histogram.sum h);
  (* Rank 3 of 5 lands in the <=100 bucket. *)
  Alcotest.(check (option int64)) "p50" (Some 100L) (M.Histogram.p50 h);
  (* Ranks 5 land in the <=2000 bucket but clamp to the recorded max. *)
  Alcotest.(check (option int64)) "p90 clamps to max" (Some 1_342L)
    (M.Histogram.p90 h);
  Alcotest.(check (option int64)) "p99 clamps to max" (Some 1_342L)
    (M.Histogram.p99 h);
  Alcotest.(check (option int64)) "min" (Some 5L) (M.Histogram.min h);
  Alcotest.(check (option int64)) "max" (Some 1_342L) (M.Histogram.max h)

let test_histogram_overflow_bucket () =
  let h = M.Histogram.create () in
  M.Histogram.record h 99_999_999L;
  (* above the 10 s top bound *)
  Alcotest.(check (option int64)) "overflow reports exact max"
    (Some 99_999_999L) (M.Histogram.p50 h)

let test_histogram_empty () =
  let h = M.Histogram.create () in
  Alcotest.(check int) "count" 0 (M.Histogram.count h);
  Alcotest.(check (option int64)) "p50" None (M.Histogram.p50 h);
  Alcotest.(check (option int64)) "p99" None (M.Histogram.p99 h);
  Alcotest.(check (option int64)) "min" None (M.Histogram.min h);
  Alcotest.(check (option int64)) "max" None (M.Histogram.max h)

let test_histogram_bad_buckets () =
  (match M.Histogram.create ~buckets:[||] () with
  | _ -> Alcotest.fail "empty buckets accepted"
  | exception Invalid_argument _ -> ());
  match M.Histogram.create ~buckets:[| 10L; 10L |] () with
  | _ -> Alcotest.fail "non-increasing buckets accepted"
  | exception Invalid_argument _ -> ()

(* --- registry ------------------------------------------------------------------ *)

let test_registry_snapshot () =
  let t = M.create () in
  let c = M.counter t "b.counter" in
  M.incr c;
  M.add c 4;
  let g = M.gauge t "a.gauge" in
  M.set_gauge g 7;
  M.set_gauge g 3;
  let h = M.histogram t "c.hist" in
  M.Histogram.record h 25L;
  (match M.snapshot t with
  | [ ("a.gauge", M.Level { last = 3; hwm = 7 });
      ("b.counter", M.Count 5);
      ("c.hist", M.Summary { count = 1; _ }) ] -> ()
  | _ -> Alcotest.fail "snapshot not sorted or wrong values");
  (* Same name returns the same metric; a kind clash raises. *)
  M.incr (M.counter t "b.counter");
  Alcotest.(check int) "shared counter" 6 (M.counter_value c);
  match M.gauge t "b.counter" with
  | _ -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ()

(* --- ledger -------------------------------------------------------------------- *)

let test_ledger_per_commit () =
  let l = Thc_obsv.Ledger.create () in
  Thc_obsv.Ledger.bump l "trinc.attest";
  Thc_obsv.Ledger.bump_by l "trinc.check" 9;
  Alcotest.(check int) "total" 10 (Thc_obsv.Ledger.total l);
  Alcotest.(check (list (pair string int))) "rows sorted"
    [ ("trinc.attest", 1); ("trinc.check", 9) ]
    (Thc_obsv.Ledger.rows l);
  (match Thc_obsv.Ledger.per_commit l ~commits:5 with
  | [ ("trinc.attest", r1); ("trinc.check", r2) ] ->
    Alcotest.(check (float 1e-9)) "attest rate" 0.2 r1;
    Alcotest.(check (float 1e-9)) "check rate" 1.8 r2
  | _ -> Alcotest.fail "per_commit shape");
  match Thc_obsv.Ledger.per_commit l ~commits:0 with
  | [ (_, 0.0); (_, 0.0) ] -> ()
  | _ -> Alcotest.fail "zero commits must give zero rates"

(* --- trace export -------------------------------------------------------------- *)

let test_trace_jsonl_roundtrip_law () =
  (* of_jsonl (to_jsonl ~encode_msg t) = Ok (map_msg encode_msg t) on a
     trace with holds, drops and crashes. *)
  let n = 3 in
  let net = Thc_sim.Net.create ~n ~default:(Thc_sim.Delay.Const 100L) in
  let engine = Thc_sim.Engine.create ~seed:9L ~n ~net () in
  let b : string Thc_sim.Engine.behavior =
    {
      init =
        (fun ctx ->
          ctx.broadcast (Printf.sprintf "hello-%d" ctx.self);
          ctx.set_timer ~delay:10L ~tag:1;
          ctx.output (Thc_sim.Obs.Note "boot"));
      on_message = (fun _ ~src:_ _ -> ());
      on_timer = (fun _ _ -> ());
    }
  in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid b
  done;
  Thc_sim.Engine.set_link engine ~src:0 ~dst:1 Thc_sim.Net.Block;
  Thc_sim.Engine.set_link engine ~src:0 ~dst:2 Thc_sim.Net.Drop;
  Thc_sim.Engine.schedule_crash engine ~pid:2 ~at:50L;
  let trace = Thc_sim.Engine.run ~until:1_000L engine in
  let encode_msg = Thc_util.Codec.encode in
  let exported = Thc_sim.Trace.to_jsonl ~encode_msg trace in
  match Thc_sim.Trace.of_jsonl exported with
  | Error e -> Alcotest.fail ("of_jsonl: " ^ e)
  | Ok back ->
    Alcotest.(check bool) "round-trip law" true
      (back = Thc_sim.Trace.map_msg encode_msg trace)

let test_replication_export_roundtrip () =
  (* A real MinBFT run: the harness export must parse back to the run's
     trace and carry a metrics snapshot plus a trusted-op ledger line. *)
  let outcome, export =
    Thc_replication.Harness.run_export
      {
        protocol = Thc_replication.Harness.Minbft_protocol;
        f = 1;
        ops = 5;
        clients = 1;
        batch = 1;
        interval = 5_000L;
        delay = Thc_sim.Delay.Uniform (50L, 500L);
        scenario = Thc_replication.Harness.Fault_free;
        seed = 3L;
      }
  in
  (match Thc_sim.Trace.of_jsonl export with
  | Error e -> Alcotest.fail ("of_jsonl: " ^ e)
  | Ok trace ->
    Alcotest.(check int) "sends survive the round trip" outcome.messages
      (Thc_sim.Trace.messages_sent trace);
    Alcotest.(check int) "n survives" outcome.replicas (trace.Thc_sim.Trace.n - 1));
  let lines = String.split_on_char '\n' export in
  let typed ty line =
    match J.parse line with
    | Ok j -> J.member "type" j = Some (J.Str ty)
    | Error _ -> false
  in
  (match List.find_opt (typed "metrics") lines with
  | None -> Alcotest.fail "no metrics line in export"
  | Some line ->
    let j = Result.get_ok (J.parse line) in
    let snap = Option.get (J.member "snapshot" j) in
    (match Option.bind (J.member "commit.count" snap) (J.member "value") with
    | Some (J.Int c) -> Alcotest.(check int) "commit count" outcome.commits c
    | _ -> Alcotest.fail "commit.count missing from snapshot"));
  match List.find_opt (typed "ledger") lines with
  | None -> Alcotest.fail "no ledger line in export"
  | Some line ->
    let j = Result.get_ok (J.parse line) in
    (match J.member "commits" j with
    | Some (J.Int c) -> Alcotest.(check int) "ledger commits" outcome.commits c
    | _ -> Alcotest.fail "ledger commits missing");
    (match Option.bind (J.member "ops" j) (J.member "trinc.attest") with
    | Some (J.Int a) -> Alcotest.(check bool) "attests charged" true (a > 0)
    | _ -> Alcotest.fail "trinc.attest missing from ledger line")

let test_export_deterministic () =
  let run () =
    snd
      (Thc_replication.Harness.run_export
         {
           protocol = Thc_replication.Harness.Minbft_protocol;
           f = 1;
           ops = 5;
           clients = 1;
           batch = 1;
           interval = 5_000L;
           delay = Thc_sim.Delay.Uniform (50L, 500L);
           scenario = Thc_replication.Harness.Fault_free;
           seed = 3L;
         })
  in
  Alcotest.(check string) "same seed, byte-identical export" (run ()) (run ())

let () =
  Alcotest.run "thc_obsv"
    [
      ( "json",
        [
          Alcotest.test_case "value round trips" `Quick test_json_roundtrip_values;
          Alcotest.test_case "arbitrary bytes" `Quick test_json_arbitrary_bytes;
          Alcotest.test_case "malformed input is Error" `Quick
            test_json_malformed_input_is_error;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "exact quantiles" `Quick test_histogram_exact_quantiles;
          Alcotest.test_case "overflow bucket" `Quick test_histogram_overflow_bucket;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
        ] );
      ("registry", [ Alcotest.test_case "snapshot" `Quick test_registry_snapshot ]);
      ("ledger", [ Alcotest.test_case "per commit" `Quick test_ledger_per_commit ]);
      ( "export",
        [
          Alcotest.test_case "jsonl round-trip law" `Quick
            test_trace_jsonl_roundtrip_law;
          Alcotest.test_case "replication export" `Quick
            test_replication_export_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_export_deterministic;
        ] );
    ]
