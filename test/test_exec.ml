(* Tests for the parallel execution subsystem: pool determinism, failure
   containment (including killed workers), the runner shape, the export
   envelope, and the promise the CLI makes everywhere — that `--jobs N`
   output is byte-identical to a sequential run for every sweep driver. *)

module Pool = Thc_exec.Pool
module Runner = Thc_exec.Runner

let str = Alcotest.string

(* substring check without pulling in astring *)
let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- pool ----------------------------------------------------------------- *)

let test_map_matches_sequential () =
  let keys = List.init 23 (fun i -> i) in
  let f k = (k * k) + 1 in
  let expect = List.map (fun k -> Ok (f k)) keys in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d equals in-process map" jobs)
        true
        (Pool.map ~jobs f keys = expect))
    [ 1; 2; 4; 7 ]

let test_on_result_fires_in_key_order () =
  let seen = ref [] in
  let on_result i _ = seen := i :: !seen in
  (* Jobs with deliberately inverted runtimes: later keys finish first in
     wall-clock terms, so in-order delivery is doing real work here. *)
  let f k =
    if Pool.can_fork then ignore (Unix.select [] [] [] (float_of_int (7 - k) /. 500.));
    k
  in
  ignore (Pool.map ~jobs:4 ~on_result f [ 0; 1; 2; 3; 4; 5; 6 ]);
  Alcotest.(check (list int))
    "ascending key order despite finish order" [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.rev !seen)

let test_job_exception_is_error_result () =
  let f k = if k = 2 then failwith "boom" else k in
  let rs = Pool.map ~jobs:3 f [ 0; 1; 2; 3; 4 ] in
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "surviving key" i v
      | Error e ->
        Alcotest.(check int) "only key 2 fails" 2 i;
        Alcotest.(check bool) "error names the exception" true
          (contains ~affix:"boom" e))
    rs;
  Alcotest.(check int) "one failure" 1
    (List.length (List.filter Result.is_error rs))

let test_killed_worker_reports_and_terminates () =
  if Pool.can_fork then begin
    (* Key 2 runs on worker 0 (striping: keys 0,2,4 -> worker 0) and kills
       its own process outright — no exception, no result frame.  The pool
       must finish anyway, with every unreported key on that worker an
       Error and the other worker's keys untouched. *)
    let f k =
      if k = 2 then Unix.kill (Unix.getpid ()) Sys.sigkill;
      k * 10
    in
    let rs = Pool.map ~jobs:2 f [ 0; 1; 2; 3; 4 ] in
    Alcotest.(check int) "one result per key" 5 (List.length rs);
    let ok, err =
      List.partition Result.is_ok
        (List.filteri (fun i _ -> i mod 2 = 0) rs)
    in
    Alcotest.(check int) "key 0 completed before the kill" 1 (List.length ok);
    Alcotest.(check int) "keys 2 and 4 fail" 2 (List.length err);
    List.iter
      (function
        | Error e ->
          Alcotest.(check bool) "error names the signal death" true
            (contains ~affix:"killed" e)
        | Ok _ -> ())
      err;
    List.iteri
      (fun i r ->
        if i mod 2 = 1 then
          Alcotest.(check bool)
            (Printf.sprintf "worker 1's key %d unaffected" i)
            true
            (r = Ok (i * 10)))
      rs
  end

let test_stats_accounting () =
  let keys = List.init 8 (fun i -> i) in
  let _, seq = Pool.map_stats ~jobs:1 (fun k -> k) keys in
  Alcotest.(check int) "sequential: no workers" 0 seq.Pool.workers;
  Alcotest.(check int) "sequential: all keys" 8 seq.Pool.keys;
  if Pool.can_fork then begin
    let _, par = Pool.map_stats ~jobs:3 (fun k -> k) keys in
    Alcotest.(check int) "parallel: three workers" 3 par.Pool.workers;
    Alcotest.(check int) "parallel: all keys" 8 par.Pool.keys;
    Alcotest.(check int) "parallel: no failures" 0 par.Pool.failed;
    Alcotest.(check int) "per-worker counts cover the keys" 8
      (Array.fold_left ( + ) 0 par.Pool.keys_per_worker);
    let u = Pool.utilization par in
    Alcotest.(check bool) "utilization in [0,1]" true (u >= 0. && u <= 1.)
  end

let test_workers_never_exceed_keys () =
  let _, st = Pool.map_stats ~jobs:16 (fun k -> k) [ 1; 2; 3 ] in
  if Pool.can_fork then
    Alcotest.(check int) "clamped to key count" 3 st.Pool.workers

(* --- runner --------------------------------------------------------------- *)

let square_sum =
  {
    Runner.name = "square-sum";
    keys = [ 1; 2; 3; 4; 5 ];
    run_one = (fun k -> k * k);
    summarize = List.fold_left ( + ) 0;
  }

let test_runner_summary_jobs_invariant () =
  Alcotest.(check int) "sequential" 55 (Runner.run ~jobs:1 square_sum);
  Alcotest.(check int) "parallel" 55 (Runner.run ~jobs:4 square_sum)

let test_runner_failure_raises () =
  let r =
    {
      Runner.name = "fragile";
      keys = [ 0; 1; 2; 3 ];
      run_one = (fun k -> if k >= 2 then failwith "fragile job" else k);
      summarize = List.length;
    }
  in
  match Runner.run ~jobs:2 r with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Runner.Job_failed { runner; index; reason } ->
    Alcotest.(check string) "runner name" "fragile" runner;
    Alcotest.(check int) "lowest failing key" 2 index;
    Alcotest.(check bool) "reason preserved" true
      (contains ~affix:"fragile job" reason)

(* --- envelope ------------------------------------------------------------- *)

let test_envelope_field_order () =
  let module J = Thc_obsv.Json in
  Alcotest.check str "full header"
    {|{"type":"loadtest","schema":"thc-loadtest/v1","seed":7,"jobs":4,"git":"abc123","points":4}|}
    (J.to_string
       (Thc_obsv.Envelope.header ~typ:"loadtest" ~schema:"thc-loadtest/v1"
          ~seed:7L ~jobs:4 ~git:"abc123"
          ~extra:[ ("points", J.Int 4) ]
          ()));
  Alcotest.check str "minimal header"
    {|{"type":"bench","schema":"thc-bench/v2"}|}
    (J.to_string
       (Thc_obsv.Envelope.header ~typ:"bench" ~schema:"thc-bench/v2" ()))

(* --- drivers: --jobs N must be byte-identical to sequential ---------------- *)

let render pp v = Format.asprintf "%a" pp v

let test_check_sweep_jobs_identical () =
  let h = Option.get (Thc_check.Harness.find "minbft") in
  let run jobs =
    render Thc_check.Sweep.pp_summary
      (Thc_check.Sweep.sweep h ~jobs ~base_seed:1L ~runs:6 ())
  in
  Alcotest.check str "rendered summary identical" (run 1) (run 4)

let test_byz_matrix_jobs_identical () =
  let run jobs =
    String.concat "\n"
      (Thc_byz.Matrix.to_jsonl
         (Thc_byz.Matrix.sweep ~jobs ~seeds:[ 1L ] ~timings:[ 2_000L ] ()))
  in
  Alcotest.check str "matrix export identical" (run 1) (run 3)

let loadtest_template =
  let module W = Thc_workload.Workload in
  let module L = Thc_workload.Loadtest in
  {
    L.protocol = L.Minbft;
    f = 1;
    batch = 1;
    seed = 5L;
    delay = Thc_sim.Delay.Uniform (50L, 500L);
    network = None;
    spec =
      {
        W.clients = 2;
        requests_per_client = 6;
        arrival = W.Open_poisson { rate_rps = 400. };
        keys = W.Keys_zipf { keys = 16; theta = 0.99 };
        mix = W.default_mix;
      };
  }

let loadtest_export jobs =
  let module W = Thc_workload.Workload in
  let module L = Thc_workload.Loadtest in
  L.export ~seed:5L
    (L.sweep ~jobs loadtest_template
       ~arrivals:
         [
           W.Open_poisson { rate_rps = 400. };
           W.Open_uniform { rate_rps = 800. };
         ]
       ~batches:[ 1; 2 ])

let test_loadtest_export_jobs_identical () =
  Alcotest.check str "loadtest export identical" (loadtest_export 1)
    (loadtest_export 2)

let test_loadtest_headerless_parse_compat () =
  (* Pre-envelope v1 streams had no header line: dropping the header from a
     current export must parse to the same rows. *)
  let module L = Thc_workload.Loadtest in
  let doc = loadtest_export 1 in
  let headerless =
    match String.index_opt doc '\n' with
    | Some i -> String.sub doc (i + 1) (String.length doc - i - 1)
    | None -> Alcotest.fail "export has no line break"
  in
  match (L.parse doc, L.parse headerless) with
  | Ok a, Ok b ->
    Alcotest.(check int) "same row count" (List.length a) (List.length b);
    Alcotest.(check bool) "same rows" true (a = b)
  | Error e, _ | _, Error e -> Alcotest.failf "parse failed: %s" e

let test_phase_trace_export_jobs_identical () =
  (* The span campaign behind `thc trace`: run_spans outcomes (span views
     plus attribution rows) crossing the worker pipe, merged in seed order
     — export bytes must not depend on the worker count. *)
  let module PT = Thc_workload.Phase_trace in
  let campaign =
    {
      PT.setup =
        Thc_replication.Harness.Setup.make
          ~protocol:Thc_replication.Harness.Minbft ~f:1 ~ops:6 ~clients:2
          ~batch:2 ~seed:1L ();
      seeds = [ 1L; 2L; 3L ];
    }
  in
  let doc jobs = PT.export campaign (PT.run ~jobs campaign) in
  let a = doc 1 in
  Alcotest.check str "span export identical across jobs" a (doc 3);
  match PT.parse a with
  | Ok rows ->
    Alcotest.(check bool) "export parses back nonempty" true (rows <> []);
    List.iter
      (fun (seed, _) ->
        Alcotest.(check bool) "each span carries a campaign seed" true
          (List.mem seed [ 1L; 2L; 3L ]))
      rows
  | Error e -> Alcotest.failf "parse failed: %s" e

(* --- bench-shaped grid through the pool ------------------------------------ *)

let test_replication_grid_jobs_identical () =
  (* The bench S1 table's exact shape: Harness.run outcomes (records with
     nested stats and a metrics registry) crossing the worker pipe. *)
  let cells =
    [
      (Thc_replication.Harness.Minbft, 1);
      (Thc_replication.Harness.Pbft, 1);
      (Thc_replication.Harness.Minbft, 2);
    ]
  in
  let run_cell (protocol, f) =
    Thc_replication.Harness.run
      (Thc_replication.Harness.Setup.make ~protocol ~f ~ops:10 ~seed:17L ())
  in
  let summarise rs =
    List.map
      (function
        | Ok (o : Thc_replication.Harness.outcome) ->
          Printf.sprintf "%d/%d msgs=%.2f mean=%.1f" o.completed o.commits
            o.messages_per_op o.latency.mean
        | Error e -> "error: " ^ e)
      rs
  in
  Alcotest.(check (list string))
    "grid rows identical"
    (summarise (Pool.map ~jobs:1 run_cell cells))
    (summarise (Pool.map ~jobs:3 run_cell cells))

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map equals sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "on_result in key order" `Quick
            test_on_result_fires_in_key_order;
          Alcotest.test_case "job exception becomes Error" `Quick
            test_job_exception_is_error_result;
          Alcotest.test_case "killed worker contained" `Quick
            test_killed_worker_reports_and_terminates;
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
          Alcotest.test_case "workers clamp to keys" `Quick
            test_workers_never_exceed_keys;
        ] );
      ( "runner",
        [
          Alcotest.test_case "summary invariant across jobs" `Quick
            test_runner_summary_jobs_invariant;
          Alcotest.test_case "failure raises Job_failed" `Quick
            test_runner_failure_raises;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "field order" `Quick test_envelope_field_order;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "check sweep identical across jobs" `Quick
            test_check_sweep_jobs_identical;
          Alcotest.test_case "byz matrix identical across jobs" `Quick
            test_byz_matrix_jobs_identical;
          Alcotest.test_case "loadtest export identical across jobs" `Quick
            test_loadtest_export_jobs_identical;
          Alcotest.test_case "headerless v1 parse compat" `Quick
            test_loadtest_headerless_parse_compat;
          Alcotest.test_case "phase trace export identical across jobs" `Quick
            test_phase_trace_export_jobs_identical;
          Alcotest.test_case "replication grid identical across jobs" `Quick
            test_replication_grid_jobs_identical;
        ] );
    ]
