(* Tests for the lib/network model layer: the topology/model codecs, the
   geo delay matrix, the seeded lossy pattern, the rational strategies,
   the `--network` determinism promise (jobs=1 and jobs=2 exports are
   byte-identical), and envelope compatibility — pre-S7 exports (with and
   without headers) and S7 exports carrying the network tag must all parse
   with the same readers. *)

module T = Thc_network.Topology
module Rat = Thc_network.Rational
module Model = Thc_network.Model
module Delay = Thc_sim.Delay
module Sexp = Thc_util.Sexp

let str = Alcotest.string

(* --- sexp codecs ---------------------------------------------------------- *)

(* One value per constructor, parameters chosen to exercise every field,
   plus a Clique with per-link overrides (the part presets never hit). *)
let topology_samples =
  [
    T.Clique { delay = Delay.Uniform (50L, 500L); links = [] };
    T.Clique
      {
        delay = Delay.Const 100L;
        links =
          [ ((0, 1), Delay.Exponential 250.); ((2, 0), Delay.Const 9_000L) ];
      };
    T.Geo_regions
      {
        regions = 3;
        lan = Delay.Uniform (5L, 50L);
        wan = Delay.Uniform (2_000L, 10_000L);
      };
    T.Asymmetric
      { fast = Delay.Uniform (50L, 500L); slow = Delay.Uniform (2_000L, 8_000L) };
    T.Lossy
      {
        base = Delay.Uniform (50L, 500L);
        drop = 0.2;
        heal_at = 300_000L;
        seed = 7L;
      };
  ]

let test_topology_sexp_roundtrip () =
  List.iter
    (fun t ->
      let s = Sexp.to_string (T.to_sexp t) in
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %s" s)
        true
        (T.of_sexp (T.to_sexp t) = t);
      (* of_string accepts the rendered sexp form too *)
      match T.of_string s with
      | Ok t' -> Alcotest.(check bool) ("of_string " ^ s) true (t' = t)
      | Error e -> Alcotest.failf "of_string %s: %s" s e)
    topology_samples

let test_presets_roundtrip () =
  List.iter
    (fun (name, t) ->
      (match T.of_string name with
      | Ok t' -> Alcotest.(check bool) ("preset " ^ name) true (t' = t)
      | Error e -> Alcotest.failf "preset %s: %s" name e);
      Alcotest.(check bool)
        (name ^ " sexp round-trip")
        true
        (T.of_sexp (T.to_sexp t) = t))
    T.presets

let test_model_roundtrip () =
  let terms =
    [ "geo3"; "lan+race:0.5"; "lossy+lazy:0.3,2000"; "asym+race:1+lazy:0.5" ]
  in
  List.iter
    (fun term ->
      match Model.of_string term with
      | Error e -> Alcotest.failf "of_string %s: %s" term e
      | Ok m ->
        Alcotest.(check bool)
          (term ^ " sexp round-trip")
          true
          (Model.of_sexp (Model.to_sexp m) = m))
    terms;
  (* alpha outside [0, 1] is a parse error, not a silent clamp *)
  Alcotest.(check bool)
    "race alpha > 1 rejected" true
    (Result.is_error (Model.of_string "lan+race:1.5"));
  Alcotest.(check bool)
    "unknown preset rejected" true
    (Result.is_error (Model.of_string "campus"))

(* --- geo delay matrix ----------------------------------------------------- *)

let test_geo_intra_faster_than_inter () =
  let t =
    T.Geo_regions
      {
        regions = 3;
        lan = Delay.Uniform (5L, 50L);
        wan = Delay.Uniform (2_000L, 10_000L);
      }
  in
  (* pids 0 and 3 share region 0; pid 1 lives in region 1 *)
  let mean ~src ~dst = Delay.mean_us (T.delay_between t ~src ~dst) in
  Alcotest.(check bool)
    "intra-region link is LAN-fast" true
    (mean ~src:0 ~dst:3 < mean ~src:0 ~dst:1);
  Alcotest.(check bool)
    "matrix is symmetric in regime" true
    (mean ~src:3 ~dst:0 = mean ~src:0 ~dst:3);
  Alcotest.(check bool)
    "cross-region pairs all WAN" true
    (mean ~src:1 ~dst:2 = mean ~src:0 ~dst:1)

(* --- lossy pattern determinism -------------------------------------------- *)

(* The drop/block pattern must be a pure function of the topology's own
   seed: same seed, same per-link policies, whatever engine it lands on. *)
let lossy_policies ~seed =
  let n = 5 in
  let net = Thc_sim.Net.create ~n ~default:(Delay.Const 50L) in
  let engine = Thc_sim.Engine.create ~seed:99L ~n ~net () in
  T.apply
    (T.Lossy
       {
         base = Delay.Uniform (50L, 500L);
         drop = 0.4;
         heal_at = 300_000L;
         seed;
       })
    engine;
  List.concat_map
    (fun src ->
      List.map
        (fun dst ->
          match Thc_sim.Net.get net ~src ~dst with
          | Thc_sim.Net.Deliver _ -> 'd'
          | Thc_sim.Net.Block -> 'b'
          | Thc_sim.Net.Drop -> 'x')
        (List.init n Fun.id))
    (List.init n Fun.id)

let test_lossy_pattern_deterministic () =
  Alcotest.(check bool)
    "same topology seed, same pattern" true
    (lossy_policies ~seed:7L = lossy_policies ~seed:7L);
  Alcotest.(check bool)
    "different seed, different pattern" true
    (lossy_policies ~seed:7L <> lossy_policies ~seed:8L);
  Alcotest.(check bool)
    "drop=0.4 afflicts some link" true
    (List.exists (fun c -> c <> 'd') (lossy_policies ~seed:7L))

(* --- rational strategies --------------------------------------------------- *)

let test_racing_quorum () =
  let topology =
    T.Geo_regions
      {
        regions = 3;
        lan = Delay.Uniform (5L, 50L);
        wan = Delay.Uniform (2_000L, 10_000L);
      }
  in
  let race = Rat.Racing_client { alpha = 1.0 } in
  (* client pid 3 shares region 0 with replica 0: the f+1 = 2 fastest set
     must contain replica 0 and have exactly f+1 members. *)
  let q = Rat.racing_quorum race ~topology ~client:3 ~replicas:3 ~f:1 in
  Alcotest.(check int) "f+1 replicas raced" 2 (List.length q);
  Alcotest.(check bool) "co-located replica is raced" true (List.mem 0 q);
  Alcotest.(check bool)
    "lazy replica races nothing" true
    (Rat.racing_quorum
       (Rat.Lazy_replica { alpha = 1.0; slack_us = 2_000L })
       ~topology ~client:3 ~replicas:3 ~f:1
    = [])

(* --- jobs=1 vs jobs=2 byte-identity under --network ------------------------ *)

let test_explore_identical_across_jobs () =
  let h = Option.get (Thc_check.Harness.find "minbft") in
  let network =
    match Model.of_string "geo3+race:0.5" with
    | Ok m -> m
    | Error e -> Alcotest.failf "model: %s" e
  in
  let rendered jobs =
    Format.asprintf "%a" Thc_check.Sweep.pp_summary
      (Thc_check.Sweep.sweep h ~network ~jobs ~base_seed:5L ~runs:4 ())
  in
  let a = rendered 1 in
  Alcotest.check str "explore summary identical across jobs" a (rendered 2);
  Alcotest.(check bool) "summary mentions the harness" true
    (String.length a > 0)

let loadtest_template ~network =
  let module W = Thc_workload.Workload in
  let module L = Thc_workload.Loadtest in
  {
    L.protocol = L.Minbft;
    f = 1;
    batch = 1;
    seed = 5L;
    delay = Delay.Uniform (50L, 500L);
    network;
    spec =
      {
        W.clients = 2;
        requests_per_client = 6;
        arrival = W.Open_poisson { rate_rps = 400. };
        keys = W.Keys_zipf { keys = 16; theta = 0.99 };
        mix = W.default_mix;
      };
  }

let loadtest_doc ~network jobs =
  let module W = Thc_workload.Workload in
  let module L = Thc_workload.Loadtest in
  let results =
    L.sweep ~jobs
      (loadtest_template ~network)
      ~arrivals:[ W.Open_poisson { rate_rps = 400. } ]
      ~batches:[ 1; 2 ]
  in
  L.export ?network ~seed:5L results

let test_loadtest_identical_across_jobs () =
  let network =
    match Model.of_string "lossy+lazy:0.5,2000" with
    | Ok m -> Some m
    | Error e -> Alcotest.failf "model: %s" e
  in
  let a = loadtest_doc ~network 1 in
  Alcotest.check str "loadtest export identical across jobs" a
    (loadtest_doc ~network 2);
  Alcotest.(check bool) "envelope records the network tag" true
    (let header = List.hd (String.split_on_char '\n' a) in
     let tag = Model.tag (Option.get network) in
     let affix = Printf.sprintf "\"network\":%S" tag in
     let n = String.length affix and m = String.length header in
     let rec go i = i + n <= m && (String.sub header i n = affix || go (i + 1)) in
     go 0)

(* --- envelope compatibility ------------------------------------------------ *)

(* Readers must accept all three generations of a loadtest/span document:
   headerless v1 rows, a v2 envelope without the network field, and an
   S7 envelope carrying it. *)

let test_parsers_accept_network_field () =
  let module L = Thc_workload.Loadtest in
  let with_net = loadtest_doc ~network:(Result.to_option (Model.of_string "lan")) 1 in
  let without_net = loadtest_doc ~network:None 1 in
  (match L.parse with_net with
  | Ok rows -> Alcotest.(check bool) "S7 envelope parses" true (rows <> [])
  | Error e -> Alcotest.failf "S7 envelope: %s" e);
  (match L.parse without_net with
  | Ok rows -> Alcotest.(check bool) "pre-S7 envelope parses" true (rows <> [])
  | Error e -> Alcotest.failf "pre-S7 envelope: %s" e);
  (* headerless v1: the same point rows with the envelope line stripped *)
  let headerless =
    String.concat "\n"
      (List.filter
         (fun l ->
           not (String.starts_with ~prefix:"{\"type\":\"loadtest\"" l))
         (String.split_on_char '\n' without_net))
  in
  match L.parse headerless with
  | Ok rows -> Alcotest.(check bool) "headerless v1 parses" true (rows <> [])
  | Error e -> Alcotest.failf "headerless: %s" e

let test_phase_trace_accepts_network_field () =
  let module PT = Thc_workload.Phase_trace in
  let module H = Thc_replication.Harness in
  let setup network =
    H.Setup.make ~protocol:H.Minbft ~f:1 ~ops:4 ~batch:2 ~seed:3L ?network ()
  in
  let doc network =
    let campaign = { PT.setup = setup network; seeds = [ 3L ] } in
    PT.export campaign (PT.run campaign)
  in
  let geo = Result.to_option (Model.of_string "geo2") in
  List.iter
    (fun (name, network) ->
      match PT.parse (doc network) with
      | Ok rows ->
        Alcotest.(check bool) (name ^ " parses nonempty") true (rows <> [])
      | Error e -> Alcotest.failf "%s: %s" name e)
    [ ("span export without network", None); ("span export with network", geo) ]

let () =
  Alcotest.run "thc_network"
    [
      ( "codec",
        [
          Alcotest.test_case "topology sexp round-trip" `Quick
            test_topology_sexp_roundtrip;
          Alcotest.test_case "presets round-trip" `Quick test_presets_roundtrip;
          Alcotest.test_case "model term round-trip" `Quick test_model_roundtrip;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "geo intra faster than inter" `Quick
            test_geo_intra_faster_than_inter;
          Alcotest.test_case "lossy pattern deterministic" `Quick
            test_lossy_pattern_deterministic;
          Alcotest.test_case "racing quorum" `Quick test_racing_quorum;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "explore identical across jobs" `Quick
            test_explore_identical_across_jobs;
          Alcotest.test_case "loadtest identical across jobs" `Quick
            test_loadtest_identical_across_jobs;
        ] );
      ( "compat",
        [
          Alcotest.test_case "loadtest parser accepts network field" `Quick
            test_parsers_accept_network_field;
          Alcotest.test_case "phase trace parser accepts network field" `Quick
            test_phase_trace_accepts_network_field;
        ] );
    ]
