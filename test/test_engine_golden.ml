(* Golden-trace equivalence suite.

   Four representative runs — one per driver family (explore, attack,
   loadtest, bench S1 cell) — were recorded as JSONL engine traces under
   test/corpus/golden/ BEFORE the engine hot-path rewrite (calendar queue +
   arena events).  This suite regenerates each run at the same seed and
   asserts the trace is byte-for-byte identical to the recording, turning
   "the rewritten engine is observationally identical" from a hope into a
   checked property.

   Regeneration goes through Thc_exec.Pool, so THC_GOLDEN_JOBS=2 also
   proves the traces survive fork/marshal worker boundaries unchanged
   (CI runs the suite at both --jobs 1 and --jobs 2).

   To re-record after an INTENTIONAL observable change (a new trace entry
   kind, a protocol change — never a silent engine regression):

     dune exec test/test_engine_golden.exe -- --record test/corpus/golden *)

module H = Thc_replication.Harness
module W = Thc_workload.Workload
module L = Thc_workload.Loadtest

let fast = Thc_sim.Delay.Uniform (50L, 500L)

(* The explore driver's minbft harness shape (lib/check/harness.ml): f = 1,
   6 ops, and an admissible random adversary script drawn from the same
   profile the sweep driver uses (n = 3, one crash, one partition episode,
   200 ms horizon). *)
let explore_trace () =
  let script =
    Thc_sim.Adversary.random
      (Thc_util.Rng.create 42L)
      ~n:3 ~horizon:200_000L ~crash_budget:1 ~partition_budget:1 ()
  in
  snd
    (H.run_export
       (H.Setup.make ~protocol:H.Minbft ~f:1 ~ops:6 ~delay:fast
          ~scenario:(H.Scripted script) ~seed:42L ()))

(* The attack driver's flagship cell: equivocation against attested MinBFT
   at the catalog's default seed. *)
let attack_trace () =
  snd (Thc_byz.Attack.run_export ~seed:1L ~attack:Thc_byz.Attack.Equivocate ())

(* One loadtest sweep point: minbft, Poisson open loop, Zipf keys,
   batch 4 — the S3 table's amortization cell. *)
let loadtest_trace () =
  snd
    (L.run_point_export
       {
         L.protocol = L.Minbft;
         f = 1;
         batch = 4;
         seed = 29L;
         delay = fast;
         network = None;
         spec =
           {
             W.clients = 4;
             requests_per_client = 20;
             arrival = W.Open_poisson { rate_rps = 400.0 };
             keys = W.Keys_zipf { keys = 64; theta = 0.99 };
             mix = W.default_mix;
           };
       })

(* The bench S1 grid's (minbft, f=1, fault-free) cell at its table seed. *)
let bench_s1_trace () =
  snd (H.run_export (H.Setup.make ~protocol:H.Minbft ~f:1 ~seed:17L ()))

let corpus =
  [
    ("explore", explore_trace);
    ("attack", attack_trace);
    ("loadtest", loadtest_trace);
    ("bench_s1", bench_s1_trace);
  ]

let jobs () =
  match Sys.getenv_opt "THC_GOLDEN_JOBS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

(* Regenerate every corpus trace, optionally across forked workers. *)
let regenerate () =
  let results =
    Thc_exec.Pool.map ~jobs:(jobs ()) (fun (_, f) -> f ()) corpus
  in
  List.map2
    (fun (name, _) r ->
      match r with
      | Ok trace -> (name, trace)
      | Error e -> failwith (Printf.sprintf "golden %s: worker failed: %s" name e))
    corpus results

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let record dir =
  List.iter
    (fun (name, trace) ->
      let path = Filename.concat dir (name ^ ".jsonl") in
      write_file path trace;
      Printf.printf "recorded %s (%d bytes)\n%!" path (String.length trace))
    (regenerate ())

(* Byte-level diff location so a mismatch reports where the divergence
   starts (line number + byte offset), not just "differs". *)
let first_divergence a b =
  let n = min (String.length a) (String.length b) in
  let rec go i line =
    if i >= n then (i, line)
    else if a.[i] <> b.[i] then (i, line)
    else go (i + 1) (if a.[i] = '\n' then line + 1 else line)
  in
  go 0 1

(* Under `dune runtest` the cwd is the sandboxed test directory; under
   `dune exec test/test_engine_golden.exe` it is the workspace root. *)
let corpus_dir () =
  List.find Sys.file_exists [ "corpus/golden"; "test/corpus/golden" ]

let check_golden name regenerate () =
  let path = Filename.concat (corpus_dir ()) (name ^ ".jsonl") in
  let expected = read_file path in
  let got = regenerate () in
  if not (String.equal expected got) then begin
    let off, line = first_divergence expected got in
    Alcotest.failf
      "golden trace %s diverges at line %d (byte %d): recorded %d bytes, \
       regenerated %d bytes"
      name line off (String.length expected) (String.length got)
  end

let golden_tests =
  let traces = lazy (regenerate ()) in
  List.map
    (fun (name, _) ->
      Alcotest.test_case
        (Printf.sprintf "%s trace is byte-identical" name)
        `Quick
        (check_golden name (fun () -> List.assoc name (Lazy.force traces))))
    corpus

let () =
  match Sys.argv with
  | [| _; "--record"; dir |] -> record dir
  | _ ->
    Alcotest.run "engine-golden"
      [ (Printf.sprintf "golden (jobs=%d)" (jobs ()), golden_tests) ]
