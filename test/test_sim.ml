(* Tests for the discrete-event engine: delivery, timers, crashes, link
   reconfiguration (block/hold/release/drop), determinism, trace queries. *)

let qcheck = QCheck_alcotest.to_alcotest

type msg = Ping of int

let net ?(delay = Thc_sim.Delay.Const 100L) n = Thc_sim.Net.create ~n ~default:delay

let recorder received : msg Thc_sim.Engine.behavior =
  {
    init = (fun _ -> ());
    on_message =
      (fun ctx ~src (Ping k) -> received := (ctx.now (), src, k) :: !received);
    on_timer = (fun _ _ -> ());
  }

let sender_at ~at ~dst k : msg Thc_sim.Engine.behavior =
  {
    init = (fun ctx -> ctx.set_timer ~delay:at ~tag:0);
    on_message = (fun _ ~src:_ _ -> ());
    on_timer = (fun ctx _ -> ctx.send dst (Ping k));
  }

(* --- delivery ---------------------------------------------------------------- *)

let test_delivery_delay () =
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let received = ref [] in
  Thc_sim.Engine.set_behavior engine 0 (sender_at ~at:50L ~dst:1 7);
  Thc_sim.Engine.set_behavior engine 1 (recorder received);
  let trace = Thc_sim.Engine.run engine in
  (match !received with
  | [ (time, 0, 7) ] -> Alcotest.(check int64) "arrives at send+delay" 150L time
  | _ -> Alcotest.fail "expected exactly one delivery");
  Alcotest.(check int) "one send in trace" 1 (Thc_sim.Trace.messages_sent trace)

let test_broadcast_includes_self () =
  let n = 3 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let received = ref [] in
  let b : msg Thc_sim.Engine.behavior =
    {
      init = (fun ctx -> if ctx.self = 0 then ctx.broadcast (Ping 1));
      on_message = (fun ctx ~src:_ _ -> received := ctx.self :: !received);
      on_timer = (fun _ _ -> ());
    }
  in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid b
  done;
  ignore (Thc_sim.Engine.run engine);
  Alcotest.(check (list int)) "all three receive, self included" [ 0; 1; 2 ]
    (List.sort compare !received)

let test_others_excludes_self () =
  let n = 3 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let received = ref [] in
  let b : msg Thc_sim.Engine.behavior =
    {
      init = (fun ctx -> if ctx.self = 0 then ctx.others (Ping 1));
      on_message = (fun ctx ~src:_ _ -> received := ctx.self :: !received);
      on_timer = (fun _ _ -> ());
    }
  in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid b
  done;
  ignore (Thc_sim.Engine.run engine);
  Alcotest.(check (list int)) "only others receive" [ 1; 2 ]
    (List.sort compare !received)

(* --- timers -------------------------------------------------------------------- *)

let test_timer_order () =
  let n = 1 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let fired = ref [] in
  let b : msg Thc_sim.Engine.behavior =
    {
      init =
        (fun ctx ->
          ctx.set_timer ~delay:300L ~tag:3;
          ctx.set_timer ~delay:100L ~tag:1;
          ctx.set_timer ~delay:200L ~tag:2);
      on_message = (fun _ ~src:_ _ -> ());
      on_timer = (fun _ tag -> fired := tag :: !fired);
    }
  in
  Thc_sim.Engine.set_behavior engine 0 b;
  ignore (Thc_sim.Engine.run engine);
  Alcotest.(check (list int)) "timers fire in time order" [ 1; 2; 3 ]
    (List.rev !fired)

(* --- crash --------------------------------------------------------------------- *)

let test_crash_stops_delivery () =
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let received = ref [] in
  Thc_sim.Engine.set_behavior engine 0 (sender_at ~at:500L ~dst:1 9);
  Thc_sim.Engine.set_behavior engine 1 (recorder received);
  Thc_sim.Engine.schedule_crash engine ~pid:1 ~at:100L;
  let trace = Thc_sim.Engine.run engine in
  Alcotest.(check int) "no deliveries after crash" 0 (List.length !received);
  Alcotest.(check bool) "crashed not correct" false (Thc_sim.Trace.correct trace 1);
  Alcotest.(check (list int)) "correct pids" [ 0 ] (Thc_sim.Trace.correct_pids trace)

let test_crashed_process_sends_nothing () =
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let received = ref [] in
  Thc_sim.Engine.set_behavior engine 0 (sender_at ~at:500L ~dst:1 9);
  Thc_sim.Engine.set_behavior engine 1 (recorder received);
  Thc_sim.Engine.schedule_crash engine ~pid:0 ~at:100L;
  let trace = Thc_sim.Engine.run engine in
  Alcotest.(check int) "no messages sent" 0 (Thc_sim.Trace.messages_sent trace)

(* --- link reconfiguration --------------------------------------------------------- *)

let test_block_holds_then_releases () =
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let received = ref [] in
  Thc_sim.Engine.set_behavior engine 0 (sender_at ~at:50L ~dst:1 5);
  Thc_sim.Engine.set_behavior engine 1 (recorder received);
  Thc_sim.Engine.set_link engine ~src:0 ~dst:1 Thc_sim.Net.Block;
  Thc_sim.Engine.at engine 1_000L (fun () ->
      Thc_sim.Engine.set_link engine ~src:0 ~dst:1
        (Thc_sim.Net.Deliver (Thc_sim.Delay.Const 10L)));
  let trace = Thc_sim.Engine.run engine in
  (match !received with
  | [ (time, 0, 5) ] ->
    Alcotest.(check int64) "released at heal + delay" 1_010L time
  | _ -> Alcotest.fail "expected exactly one delivery");
  let held =
    Thc_sim.Trace.count trace (function Thc_sim.Trace.Held _ -> true | _ -> false)
  in
  Alcotest.(check int) "held entry recorded" 1 held

let test_drop () =
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let received = ref [] in
  Thc_sim.Engine.set_behavior engine 0 (sender_at ~at:50L ~dst:1 5);
  Thc_sim.Engine.set_behavior engine 1 (recorder received);
  Thc_sim.Engine.set_link engine ~src:0 ~dst:1 Thc_sim.Net.Drop;
  let trace = Thc_sim.Engine.run engine in
  Alcotest.(check int) "nothing delivered" 0 (List.length !received);
  Alcotest.(check int) "drop recorded" 1
    (Thc_sim.Trace.count trace (function Thc_sim.Trace.Dropped _ -> true | _ -> false))

let test_heal_all () =
  let n = 3 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let received = ref [] in
  Thc_sim.Engine.set_behavior engine 0 (sender_at ~at:10L ~dst:2 1);
  Thc_sim.Engine.set_behavior engine 1 (sender_at ~at:10L ~dst:2 2);
  Thc_sim.Engine.set_behavior engine 2 (recorder received);
  Thc_sim.Net.set_to (Thc_sim.Engine.net engine) ~dst:2 Thc_sim.Net.Block;
  Thc_sim.Engine.at engine 500L (fun () ->
      Thc_sim.Engine.heal_all engine (Thc_sim.Delay.Const 1L));
  ignore (Thc_sim.Engine.run engine);
  Alcotest.(check int) "both held messages arrive after heal_all" 2
    (List.length !received)

let test_isolate_groups () =
  let net = Thc_sim.Net.create ~n:4 ~default:(Thc_sim.Delay.Const 1L) in
  Thc_sim.Net.isolate_groups net ~groups:[ [ 0; 1 ] ] Thc_sim.Net.Block;
  let blocked src dst =
    match Thc_sim.Net.get net ~src ~dst with
    | Thc_sim.Net.Block -> true
    | Thc_sim.Net.Deliver _ | Thc_sim.Net.Drop -> false
  in
  Alcotest.(check bool) "within group open" false (blocked 0 1);
  Alcotest.(check bool) "implicit group open" false (blocked 2 3);
  Alcotest.(check bool) "cross blocked" true (blocked 0 2);
  Alcotest.(check bool) "cross blocked reverse" true (blocked 3 1)

(* --- determinism ------------------------------------------------------------------- *)

let chatty seed =
  let n = 4 in
  let engine =
    Thc_sim.Engine.create ~seed ~n
      ~net:(net ~delay:(Thc_sim.Delay.Uniform (10L, 500L)) n)
      ()
  in
  let b : msg Thc_sim.Engine.behavior =
    {
      init = (fun ctx -> ctx.broadcast (Ping ctx.self));
      on_message =
        (fun ctx ~src:_ (Ping k) ->
          if k < 3 then ctx.send (Thc_util.Rng.int ctx.rng 4) (Ping (k + 1)));
      on_timer = (fun _ _ -> ());
    }
  in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid b
  done;
  Thc_sim.Engine.run engine

let test_determinism () =
  let t1 = chatty 42L in
  let t2 = chatty 42L in
  Alcotest.(check string) "same seed, identical traces"
    (Thc_util.Codec.encode t1.Thc_sim.Trace.entries)
    (Thc_util.Codec.encode t2.Thc_sim.Trace.entries)

let test_seed_changes_schedule () =
  let t1 = chatty 42L in
  let t2 = chatty 43L in
  Alcotest.(check bool) "different seed, different schedule" true
    (Thc_util.Codec.encode t1.Thc_sim.Trace.entries
    <> Thc_util.Codec.encode t2.Thc_sim.Trace.entries)

(* --- engine hot path (calendar queue + arena) --------------------------------------- *)

(* Documented ordering invariant: events scheduled for the same virtual
   time dispatch in push order (Engine.push's per-engine tie counter).
   Every driver's byte-determinism rests on this, so it gets a direct
   regression test: a timer, a Const-delay self-send landing at the same
   instant, and two more timers — popped exactly as pushed. *)
let test_tie_break_insertion_order () =
  let n = 1 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let log = ref [] in
  let b : msg Thc_sim.Engine.behavior =
    {
      init =
        (fun ctx ->
          ctx.set_timer ~delay:100L ~tag:1;
          ctx.send 0 (Ping 2);
          ctx.set_timer ~delay:100L ~tag:3;
          ctx.set_timer ~delay:100L ~tag:1);
      on_message = (fun _ ~src:_ (Ping k) -> log := k :: !log);
      on_timer = (fun _ tag -> log := tag :: !log);
    }
  in
  Thc_sim.Engine.set_behavior engine 0 b;
  ignore (Thc_sim.Engine.run engine);
  Alcotest.(check (list int))
    "same virtual time pops in push order" [ 1; 2; 3; 1 ] (List.rev !log)

(* A run busy enough to cycle the event arena and the held-buffer pool:
   broadcasts, RNG-routed forwards, outputs on pid 0, a mid-run crash. *)
let busy ?(recycle = true) ?(tracing = Thc_sim.Engine.Full) seed =
  let n = 4 in
  let engine =
    Thc_sim.Engine.create ~seed ~tracing ~recycle ~n
      ~net:(net ~delay:(Thc_sim.Delay.Uniform (10L, 500L)) n)
      ()
  in
  let b : msg Thc_sim.Engine.behavior =
    {
      init = (fun ctx -> ctx.broadcast (Ping ctx.self));
      on_message =
        (fun ctx ~src:_ (Ping k) ->
          if ctx.self = 0 then ctx.output (Thc_sim.Obs.Note (string_of_int k));
          if k < 3 then ctx.send (Thc_util.Rng.int ctx.rng 4) (Ping (k + 1)));
      on_timer = (fun _ _ -> ());
    }
  in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid b
  done;
  Thc_sim.Engine.schedule_crash engine ~pid:3 ~at:400L;
  let trace = Thc_sim.Engine.run engine in
  (trace, Thc_sim.Engine.events_processed engine)

(* Arena recycling must be invisible: a reused event record with a stale
   field would corrupt the trace or the schedule, so the recycling and
   fresh-allocation engines must agree byte for byte. *)
let test_recycle_equivalence () =
  let tr, er = busy ~recycle:true 7L in
  let tf, ef = busy ~recycle:false 7L in
  Alcotest.(check string) "identical traces with and without recycling"
    (Thc_util.Codec.encode tr.Thc_sim.Trace.entries)
    (Thc_util.Codec.encode tf.Thc_sim.Trace.entries);
  Alcotest.(check int64)
    "identical end time" tr.Thc_sim.Trace.end_time tf.Thc_sim.Trace.end_time;
  Alcotest.(check int) "identical event count" er ef;
  let report t =
    let r = Thc_sim.Metrics.delivery_report t in
    ( List.length r.Thc_sim.Metrics.latencies,
      r.Thc_sim.Metrics.delivered,
      r.Thc_sim.Metrics.held_at_end,
      r.Thc_sim.Metrics.dropped,
      r.Thc_sim.Metrics.in_flight_at_end )
  in
  Alcotest.(check (pair int (pair int (pair int (pair int int)))))
    "identical delivery report"
    (let a, b, c, d, e = report tr in
     (a, (b, (c, (d, e)))))
    (let a, b, c, d, e = report tf in
     (a, (b, (c, (d, e)))))

(* Tracing modes drop records, never events: Outputs_only keeps exactly
   the Output/Crashed subsequence of the Full trace, Off keeps nothing,
   and the schedule (event count, end time) is identical in all three. *)
let test_tracing_modes () =
  let full, e_full = busy ~tracing:Thc_sim.Engine.Full 7L in
  let lite, e_lite = busy ~tracing:Thc_sim.Engine.Outputs_only 7L in
  let off, e_off = busy ~tracing:Thc_sim.Engine.Off 7L in
  let key_only entries =
    List.filter
      (function
        | Thc_sim.Trace.Output _ | Thc_sim.Trace.Crashed _ -> true
        | _ -> false)
      entries
  in
  Alcotest.(check string) "Outputs_only = Full filtered to Output/Crashed"
    (Thc_util.Codec.encode (key_only full.Thc_sim.Trace.entries))
    (Thc_util.Codec.encode lite.Thc_sim.Trace.entries);
  Alcotest.(check int) "Off records nothing" 0
    (List.length off.Thc_sim.Trace.entries);
  Alcotest.(check int64) "lite end time"
    full.Thc_sim.Trace.end_time lite.Thc_sim.Trace.end_time;
  Alcotest.(check int64) "off end time"
    full.Thc_sim.Trace.end_time off.Thc_sim.Trace.end_time;
  Alcotest.(check int) "lite event count" e_full e_lite;
  Alcotest.(check int) "off event count" e_full e_off

(* --- outputs and queries ------------------------------------------------------------ *)

let test_outputs () =
  let n = 1 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let b : msg Thc_sim.Engine.behavior =
    {
      init =
        (fun ctx ->
          ctx.output (Thc_sim.Obs.Note "one");
          ctx.output (Thc_sim.Obs.Decided (Some "v")));
      on_message = (fun _ ~src:_ _ -> ());
      on_timer = (fun _ _ -> ());
    }
  in
  Thc_sim.Engine.set_behavior engine 0 b;
  let trace = Thc_sim.Engine.run engine in
  Alcotest.(check int) "two outputs" 2 (List.length (Thc_sim.Trace.outputs_of trace 0));
  (match Thc_sim.Trace.decision_of trace 0 with
  | Some (Some "v") -> ()
  | _ -> Alcotest.fail "decision not found")

let test_until_bound () =
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let received = ref [] in
  Thc_sim.Engine.set_behavior engine 0 (sender_at ~at:5_000L ~dst:1 1);
  Thc_sim.Engine.set_behavior engine 1 (recorder received);
  ignore (Thc_sim.Engine.run ~until:1_000L engine);
  Alcotest.(check int) "events past the bound unprocessed" 0
    (List.length !received)

let test_event_limit () =
  let n = 1 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let b : msg Thc_sim.Engine.behavior =
    {
      init = (fun ctx -> ctx.set_timer ~delay:1L ~tag:0);
      on_message = (fun _ ~src:_ _ -> ());
      on_timer = (fun ctx _ -> ctx.set_timer ~delay:1L ~tag:0);
    }
  in
  Thc_sim.Engine.set_behavior engine 0 b;
  (match Thc_sim.Engine.run ~max_events:100 engine with
  | _ -> Alcotest.fail "expected event-limit failure"
  | exception Failure _ -> ())

let test_reception_transcript () =
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  Thc_sim.Engine.set_behavior engine 0 (sender_at ~at:10L ~dst:1 3);
  Thc_sim.Engine.set_behavior engine 1
    { (recorder (ref [])) with on_message = (fun _ ~src:_ _ -> ()) };
  let trace = Thc_sim.Engine.run engine in
  Alcotest.(check int) "one entry in p1's transcript" 1
    (List.length (Thc_sim.Trace.reception_transcript trace 1));
  Alcotest.(check int) "p0 received nothing" 0
    (List.length (Thc_sim.Trace.reception_transcript trace 0))

(* --- delay distributions -------------------------------------------------------------- *)

let prop_delay_uniform_bounds =
  QCheck.Test.make ~name:"uniform delays stay within bounds" ~count:300
    QCheck.(pair int64 (pair (int_bound 1000) (int_bound 1000)))
    (fun (seed, (a, b)) ->
      let lo = Int64.of_int (min a b) in
      let hi = Int64.of_int (max a b) in
      let g = Thc_util.Rng.create seed in
      let d = Thc_sim.Delay.sample g (Thc_sim.Delay.Uniform (lo, hi)) in
      d >= lo && d <= hi)

let prop_delay_exponential_positive =
  QCheck.Test.make ~name:"exponential delays are at least 1" ~count:300
    QCheck.int64
    (fun seed ->
      let g = Thc_util.Rng.create seed in
      Thc_sim.Delay.sample g (Thc_sim.Delay.Exponential 200.0) >= 1L)

(* --- metrics ---------------------------------------------------------------------- *)

let test_metrics_kind_counts () =
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let b : msg Thc_sim.Engine.behavior =
    {
      init =
        (fun ctx ->
          if ctx.self = 0 then begin
            ctx.send 1 (Ping 1);
            ctx.send 1 (Ping 1);
            ctx.send 1 (Ping 2)
          end);
      on_message = (fun _ ~src:_ _ -> ());
      on_timer = (fun _ _ -> ());
    }
  in
  Thc_sim.Engine.set_behavior engine 0 b;
  Thc_sim.Engine.set_behavior engine 1 Thc_sim.Engine.no_op;
  let trace = Thc_sim.Engine.run engine in
  let counts =
    Thc_sim.Metrics.kind_counts trace ~classify:(fun (Ping k) ->
        if k = 1 then "one" else "other")
  in
  Alcotest.(check (list (pair string int))) "grouped and sorted"
    [ ("one", 2); ("other", 1) ] counts;
  Alcotest.(check (list (pair int int))) "sends by source" [ (0, 3) ]
    (Thc_sim.Metrics.sends_by_source trace)

let test_metrics_delivery_latency () =
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  Thc_sim.Engine.set_behavior engine 0 (sender_at ~at:10L ~dst:1 1);
  Thc_sim.Engine.set_behavior engine 1 Thc_sim.Engine.no_op;
  let trace = Thc_sim.Engine.run engine in
  (match Thc_sim.Metrics.delivery_latencies trace with
  | [ l ] -> Alcotest.(check (float 0.01)) "matches link delay" 100.0 l
  | _ -> Alcotest.fail "expected one latency sample");
  Alcotest.(check bool) "event rate positive" true
    (Thc_sim.Metrics.events_per_virtual_ms trace > 0.0)

let test_metrics_seq_matching () =
  (* Every Delivered seq must refer to a Sent seq on the same (src, dst)
     link — the invariant delivery_report's matching relies on. *)
  let n = 3 in
  let engine =
    Thc_sim.Engine.create ~seed:5L ~n
      ~net:(net ~delay:(Thc_sim.Delay.Uniform (10L, 500L)) n)
      ()
  in
  let b : msg Thc_sim.Engine.behavior =
    {
      init = (fun ctx -> ctx.broadcast (Ping ctx.self));
      on_message =
        (fun ctx ~src:_ (Ping k) -> if k < 2 then ctx.others (Ping (k + 1)));
      on_timer = (fun _ _ -> ());
    }
  in
  for pid = 0 to n - 1 do
    Thc_sim.Engine.set_behavior engine pid b
  done;
  let trace = Thc_sim.Engine.run engine in
  let sent = Hashtbl.create 64 in
  List.iter
    (function
      | Thc_sim.Trace.Sent { src; dst; seq; _ } ->
        if Hashtbl.mem sent (src, dst, seq) then
          Alcotest.fail "duplicate send seq on a link";
        Hashtbl.add sent (src, dst, seq) ()
      | _ -> ())
    trace.Thc_sim.Trace.entries;
  List.iter
    (function
      | Thc_sim.Trace.Delivered { src; dst; seq; _ } ->
        if not (Hashtbl.mem sent (src, dst, seq)) then
          Alcotest.fail "delivery without a matching send"
      | _ -> ())
    trace.Thc_sim.Trace.entries;
  let r = Thc_sim.Metrics.delivery_report trace in
  Alcotest.(check int) "every send accounted for"
    (Thc_sim.Trace.messages_sent trace)
    (r.delivered + r.dropped + r.held_at_end + r.in_flight_at_end);
  Alcotest.(check int) "one latency per delivery" r.delivered
    (List.length r.latencies)

let test_metrics_delivery_report_held () =
  (* A message still queued on a blocked link when the horizon hits must be
     counted as held_at_end, not silently excluded. *)
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  Thc_sim.Engine.set_behavior engine 0 (sender_at ~at:50L ~dst:1 1);
  Thc_sim.Engine.set_behavior engine 1 Thc_sim.Engine.no_op;
  Thc_sim.Engine.set_link engine ~src:0 ~dst:1 Thc_sim.Net.Block;
  let trace = Thc_sim.Engine.run ~until:1_000L engine in
  let r = Thc_sim.Metrics.delivery_report trace in
  Alcotest.(check int) "held at end" 1 r.held_at_end;
  Alcotest.(check int) "nothing delivered" 0 r.delivered;
  Alcotest.(check int) "nothing dropped" 0 r.dropped;
  Alcotest.(check int) "nothing in flight" 0 r.in_flight_at_end;
  Alcotest.(check int) "no latency samples" 0 (List.length r.latencies)

let test_metrics_delivery_report_dropped () =
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  Thc_sim.Engine.set_behavior engine 0 (sender_at ~at:50L ~dst:1 1);
  Thc_sim.Engine.set_behavior engine 1 Thc_sim.Engine.no_op;
  Thc_sim.Engine.set_link engine ~src:0 ~dst:1 Thc_sim.Net.Drop;
  let trace = Thc_sim.Engine.run engine in
  let r = Thc_sim.Metrics.delivery_report trace in
  Alcotest.(check int) "dropped" 1 r.dropped;
  Alcotest.(check int) "not held" 0 r.held_at_end

(* --- adversary scripts ---------------------------------------------------------- *)

let test_adversary_random_admissible () =
  for i = 1 to 50 do
    let rng = Thc_util.Rng.create (Int64.of_int i) in
    let script =
      Thc_sim.Adversary.random rng ~n:5 ~horizon:100_000L ~crash_budget:2 ()
    in
    let crashed = Thc_sim.Adversary.crashed script in
    if List.length crashed > 2 then Alcotest.fail "crash budget exceeded";
    if List.length (List.sort_uniq compare crashed) <> List.length crashed then
      Alcotest.fail "duplicate crash victim";
    List.iter
      (fun (e : Thc_sim.Adversary.event) ->
        if e.at < 0L || e.at > 100_000L then Alcotest.fail "event out of horizon")
      script.events
  done

let test_adversary_install_heals () =
  (* A message sent during the partition must be delivered after the final
     heal: install guarantees eventual delivery. *)
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let received = ref [] in
  Thc_sim.Engine.set_behavior engine 0 (sender_at ~at:5_000L ~dst:1 1);
  Thc_sim.Engine.set_behavior engine 1 (recorder received);
  Thc_sim.Adversary.install
    {
      Thc_sim.Adversary.events =
        [ { at = 0L; action = Thc_sim.Adversary.Block_link (0, 1) } ];
      horizon = 50_000L;
    }
    engine;
  ignore (Thc_sim.Engine.run engine);
  (match !received with
  | [ (time, 0, 1) ] ->
    if time < 50_000L then Alcotest.fail "delivered before the heal"
  | _ -> Alcotest.fail "held message lost: eventual delivery broken")

let test_adversary_partition_blocks_cross_only () =
  let n = 4 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  Thc_sim.Adversary.install
    {
      Thc_sim.Adversary.events =
        [ { at = 0L; action = Thc_sim.Adversary.Block_groups [ [ 0; 1 ]; [ 2; 3 ] ] } ];
      horizon = 100_000L;
    }
    engine;
  ignore (Thc_sim.Engine.run ~until:1L engine);
  let blocked src dst =
    match Thc_sim.Net.get (Thc_sim.Engine.net engine) ~src ~dst with
    | Thc_sim.Net.Block -> true
    | Thc_sim.Net.Deliver _ | Thc_sim.Net.Drop -> false
  in
  Alcotest.(check bool) "cross blocked" true (blocked 0 2);
  Alcotest.(check bool) "within open" false (blocked 0 1)

let prop_adversary_sexp_roundtrip =
  QCheck.Test.make ~name:"adversary sexp codec round-trips" ~count:100
    QCheck.(pair int64 (int_bound 3))
    (fun (seed, crash_budget) ->
      let rng = Thc_util.Rng.create seed in
      let script =
        Thc_sim.Adversary.random rng ~n:5 ~horizon:100_000L ~crash_budget ()
      in
      let text = Thc_util.Sexp.to_string (Thc_sim.Adversary.to_sexp script) in
      let back =
        Thc_sim.Adversary.of_sexp (Thc_util.Sexp.of_string_exn text)
      in
      Thc_sim.Adversary.equal script back)

let test_adversary_block_at_horizon_still_heals () =
  (* The subtle ordering case: a block event at exactly [horizon].  The
     appended heal shares its timestamp, and the engine breaks the tie by
     insertion order — install pushes the heal last, so the run must end on
     a healed network, not a blocked one. *)
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  Thc_sim.Engine.set_behavior engine 0 Thc_sim.Engine.no_op;
  Thc_sim.Engine.set_behavior engine 1 Thc_sim.Engine.no_op;
  Thc_sim.Adversary.install
    {
      Thc_sim.Adversary.events =
        [ { at = 50_000L; action = Thc_sim.Adversary.Block_link (0, 1) } ];
      horizon = 50_000L;
    }
    engine;
  ignore (Thc_sim.Engine.run engine);
  (match Thc_sim.Net.get (Thc_sim.Engine.net engine) ~src:0 ~dst:1 with
  | Thc_sim.Net.Deliver _ -> ()
  | Thc_sim.Net.Block | Thc_sim.Net.Drop ->
    Alcotest.fail "link still blocked after the horizon heal")

let test_adversary_unsorted_script_heals () =
  (* Events listed out of time order: the heal is scripted {e before} the
     block in the list but {e after} it in time.  ends_healed/install must
     judge the time-sorted view, append the horizon heal, and deliver the
     held message. *)
  let n = 2 in
  let engine = Thc_sim.Engine.create ~n ~net:(net n) () in
  let received = ref [] in
  Thc_sim.Engine.set_behavior engine 0 (sender_at ~at:45_000L ~dst:1 1);
  Thc_sim.Engine.set_behavior engine 1 (recorder received);
  Thc_sim.Adversary.install
    {
      Thc_sim.Adversary.events =
        [
          { at = 40_000L; action = Thc_sim.Adversary.Block_link (0, 1) };
          { at = 10_000L; action = Thc_sim.Adversary.Heal };
        ];
      horizon = 50_000L;
    }
    engine;
  ignore (Thc_sim.Engine.run engine);
  (match !received with
  | [ (time, 0, 1) ] ->
    if time < 50_000L then Alcotest.fail "delivered before the horizon heal"
  | _ -> Alcotest.fail "held message lost: unsorted script skipped the heal")

let test_adversary_corrupt_roundtrip () =
  (* Scripts carrying [Corrupt] events — the attack-catalog extension — must
     survive the repro codec byte-for-byte like every other action. *)
  let script =
    {
      Thc_sim.Adversary.events =
        [
          { at = 1L; action = Thc_sim.Adversary.Corrupt { pid = 0; attack = "equivocation" } };
          { at = 5_000L; action = Thc_sim.Adversary.Block_link (1, 2) };
          { at = 9_000L; action = Thc_sim.Adversary.Heal };
        ];
      horizon = 10_000L;
    }
  in
  let text = Thc_util.Sexp.to_string (Thc_sim.Adversary.to_sexp script) in
  let back = Thc_sim.Adversary.of_sexp (Thc_util.Sexp.of_string_exn text) in
  Alcotest.(check bool) "corrupt round-trips" true
    (Thc_sim.Adversary.equal script back);
  Alcotest.(check (list (pair int string)))
    "corrupted pairs" [ (0, "equivocation") ]
    (Thc_sim.Adversary.corrupted back)

let test_adversary_admissible_budgets () =
  let corrupt ~at pid attack =
    { Thc_sim.Adversary.at; action = Thc_sim.Adversary.Corrupt { pid; attack } }
  in
  let script events = { Thc_sim.Adversary.events; horizon = 10_000L } in
  let ok s ~crash_budget ~corrupt_budget =
    Thc_sim.Adversary.admissible s ~n:3 ~crash_budget ~corrupt_budget ()
  in
  (match ok (script [ corrupt ~at:1L 0 "replay" ]) ~crash_budget:0 ~corrupt_budget:1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "within budget rejected: %s" e);
  (match ok (script [ corrupt ~at:1L 0 "replay" ]) ~crash_budget:0 ~corrupt_budget:0 with
  | Ok () -> Alcotest.fail "over-budget corruption accepted"
  | Error _ -> ());
  (match
     ok
       (script [ corrupt ~at:1L 0 "replay"; corrupt ~at:2L 0 "reuse" ])
       ~crash_budget:0 ~corrupt_budget:2
   with
  | Ok () -> Alcotest.fail "double corruption of one pid accepted"
  | Error _ -> ());
  match
    ok
      (script
         [
           { at = 1L; action = Thc_sim.Adversary.Crash 0 };
           corrupt ~at:2L 0 "replay";
         ])
      ~crash_budget:1 ~corrupt_budget:1
  with
  | Ok () -> Alcotest.fail "crash+corrupt overlap accepted"
  | Error _ -> ()

let () =
  Alcotest.run "thc_sim"
    [
      ( "delivery",
        [
          Alcotest.test_case "delay" `Quick test_delivery_delay;
          Alcotest.test_case "broadcast includes self" `Quick test_broadcast_includes_self;
          Alcotest.test_case "others excludes self" `Quick test_others_excludes_self;
        ] );
      ("timers", [ Alcotest.test_case "fire order" `Quick test_timer_order ]);
      ( "crash",
        [
          Alcotest.test_case "stops delivery" `Quick test_crash_stops_delivery;
          Alcotest.test_case "stops sending" `Quick test_crashed_process_sends_nothing;
        ] );
      ( "links",
        [
          Alcotest.test_case "block then release" `Quick test_block_holds_then_releases;
          Alcotest.test_case "drop" `Quick test_drop;
          Alcotest.test_case "heal_all" `Quick test_heal_all;
          Alcotest.test_case "isolate groups" `Quick test_isolate_groups;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed same trace" `Quick test_determinism;
          Alcotest.test_case "seed matters" `Quick test_seed_changes_schedule;
        ] );
      ( "engine hot path",
        [
          Alcotest.test_case "tie-break: push order" `Quick
            test_tie_break_insertion_order;
          Alcotest.test_case "recycle equivalence" `Quick
            test_recycle_equivalence;
          Alcotest.test_case "tracing modes" `Quick test_tracing_modes;
        ] );
      ( "trace",
        [
          Alcotest.test_case "outputs" `Quick test_outputs;
          Alcotest.test_case "until bound" `Quick test_until_bound;
          Alcotest.test_case "event limit" `Quick test_event_limit;
          Alcotest.test_case "reception transcript" `Quick test_reception_transcript;
        ] );
      ( "delays",
        [ qcheck prop_delay_uniform_bounds; qcheck prop_delay_exponential_positive ] );
      ( "metrics",
        [
          Alcotest.test_case "kind counts" `Quick test_metrics_kind_counts;
          Alcotest.test_case "delivery latency" `Quick test_metrics_delivery_latency;
          Alcotest.test_case "seq matching" `Quick test_metrics_seq_matching;
          Alcotest.test_case "delivery report: held at end" `Quick
            test_metrics_delivery_report_held;
          Alcotest.test_case "delivery report: dropped" `Quick
            test_metrics_delivery_report_dropped;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "random admissible" `Quick test_adversary_random_admissible;
          Alcotest.test_case "install heals" `Quick test_adversary_install_heals;
          Alcotest.test_case "partition scope" `Quick test_adversary_partition_blocks_cross_only;
          Alcotest.test_case "block at horizon still heals" `Quick
            test_adversary_block_at_horizon_still_heals;
          Alcotest.test_case "unsorted script heals" `Quick
            test_adversary_unsorted_script_heals;
          qcheck prop_adversary_sexp_roundtrip;
          Alcotest.test_case "corrupt round-trips" `Quick
            test_adversary_corrupt_roundtrip;
          Alcotest.test_case "admissible budgets" `Quick
            test_adversary_admissible_budgets;
        ] );
    ]
