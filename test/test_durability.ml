(* Long-lived service durability: the Protocol/Setup API surface, attested
   checkpoint certificates, log truncation bounds, and restart-rejoin via
   verified state transfer. *)

module H = Thc_replication.Harness
module P = Thc_replication.Protocol
module D = Thc_replication.Durability

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- Protocol codec ------------------------------------------------------ *)

let test_protocol_roundtrip () =
  Alcotest.(check int) "three protocols" 3 (List.length P.all);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (P.to_string p ^ " round-trips")
        true
        (P.of_string (P.to_string p) = Some p))
    P.all;
  Alcotest.(check bool) "unknown name rejected" true (P.of_string "raft" = None);
  Alcotest.(check bool) "empty name rejected" true (P.of_string "" = None);
  (* The harness re-export is the same type, not a parallel enum. *)
  Alcotest.(check bool) "harness alias is Protocol.t" true (H.Minbft = P.Minbft)

(* --- Setup.make ---------------------------------------------------------- *)

let test_setup_make_matches_literal () =
  (* The smart constructor's defaults must reproduce the record literal the
     tree used before it existed — byte-for-byte on a golden-shaped run. *)
  let literal =
    {
      H.protocol = H.Minbft;
      f = 1;
      ops = 25;
      clients = 1;
      batch = 1;
      interval = 5_000L;
      delay = Thc_sim.Delay.Uniform (50L, 500L);
      scenario = H.Fault_free;
      seed = 17L;
      network = None;
      checkpoint_interval = 0;
    }
  in
  let made = H.Setup.make ~protocol:H.Minbft ~f:1 ~seed:17L () in
  Alcotest.(check bool) "defaults equal the legacy literal" true (made = literal);
  let _, a = H.run_export literal in
  let _, b = H.run_export made in
  Alcotest.(check bool) "export bytes identical" true (String.equal a b)

(* --- checkpoint certificates -------------------------------------------- *)

let v owner = { D.owner; upto = 8; digest = 42L; exec_count = 8 }

let test_cert_quorum_edges () =
  Alcotest.(check bool) "empty cert unstable" false (D.cert_stable ~f:1 []);
  Alcotest.(check bool) "below f+1 unstable" false (D.cert_stable ~f:1 [ v 0 ]);
  Alcotest.(check bool) "exactly f+1 stable" true
    (D.cert_stable ~f:1 [ v 0; v 1 ]);
  Alcotest.(check bool) "duplicate signer counts once" false
    (D.cert_stable ~f:1 [ v 0; v 0 ]);
  Alcotest.(check bool) "mismatched upto vote excluded" false
    (D.cert_stable ~f:1 [ v 0; { (v 1) with D.upto = 4 } ]);
  Alcotest.(check bool) "mismatched digest vote excluded" false
    (D.cert_stable ~f:1 [ v 0; { (v 1) with D.digest = 7L } ]);
  Alcotest.(check bool) "f=2 needs three signers" false
    (D.cert_stable ~f:2 [ v 0; v 1 ]);
  Alcotest.(check bool) "f=2 stable at three" true
    (D.cert_stable ~f:2 [ v 0; v 1; v 2 ])

(* --- log truncation ------------------------------------------------------ *)

let test_minbft_truncation_bound () =
  let ival = 4 in
  let o =
    H.run
      (H.Setup.make ~protocol:H.Minbft ~f:1 ~ops:30 ~checkpoint_interval:ival
         ~seed:11L ())
  in
  Alcotest.(check bool) "safe" true (o.H.safety_violations = []);
  Alcotest.(check bool) "live" true (o.H.liveness_violations = []);
  let d = o.H.durability in
  Alcotest.(check bool) "truncated at least once" true (d.D.truncations > 0);
  Alcotest.(check bool) "stable checkpoint advanced" true (d.D.stable_upto > 0);
  Alcotest.(check bool)
    (Printf.sprintf "log hwm %d within bound %d" d.D.hwm
       (D.bound ~checkpoint_interval:ival))
    true
    (D.bound_ok ~checkpoint_interval:ival d)

let test_checkpointing_off_is_inert () =
  (* interval 0 must change nothing: no truncation, no stable checkpoint,
     the whole log retained — and identical bytes to the pre-durability
     golden shape (covered by the golden corpus tests). *)
  let o = H.run (H.Setup.make ~protocol:H.Minbft ~f:1 ~ops:30 ~seed:11L ()) in
  let d = o.H.durability in
  Alcotest.(check int) "no truncations" 0 d.D.truncations;
  Alcotest.(check int) "no stable checkpoint" 0 d.D.stable_upto;
  Alcotest.(check bool) "log retains every committed slot" true (d.D.live >= 30)

let test_ubft_register_truncation () =
  let o =
    H.run
      (H.Setup.make ~protocol:H.Ubft ~f:1 ~ops:30 ~checkpoint_interval:4
         ~seed:11L ())
  in
  Alcotest.(check bool) "safe" true (o.H.safety_violations = []);
  let d = o.H.durability in
  Alcotest.(check bool) "registers truncated" true (d.D.truncations > 0);
  Alcotest.(check bool) "register hwm below untruncated length" true
    (d.D.hwm < 30)

(* --- restart and state transfer ------------------------------------------ *)

let test_restart_rejoins_via_state_transfer () =
  let o, export =
    H.run_export
      (H.Setup.make ~protocol:H.Minbft ~f:1 ~ops:30 ~checkpoint_interval:4
         ~scenario:(H.Restart_replica { pid = 2; at = 60_000L })
         ~seed:11L ())
  in
  Alcotest.(check bool) "safe across the restart" true
    (o.H.safety_violations = []);
  Alcotest.(check bool) "live across the restart" true
    (o.H.liveness_violations = []);
  Alcotest.(check bool) "joiner recovered through a verified snapshot" true
    (contains ~needle:"recovered(" export);
  let d = o.H.durability in
  Alcotest.(check bool) "stable checkpoint exists to transfer" true
    (d.D.stable_upto > 0)

let test_restart_without_checkpoints_still_recovers () =
  (* With no checkpoints there is no snapshot to install; the wiped replica
     must still do no harm (stay safe) and the cluster stays live on the
     remaining 2f quorum. *)
  let o =
    H.run
      (H.Setup.make ~protocol:H.Minbft ~f:1 ~ops:30
         ~scenario:(H.Restart_replica { pid = 2; at = 60_000L })
         ~seed:11L ())
  in
  Alcotest.(check bool) "safe" true (o.H.safety_violations = []);
  Alcotest.(check bool) "live" true (o.H.liveness_violations = [])

let test_restart_rejected_off_minbft () =
  List.iter
    (fun protocol ->
      Alcotest.(check bool)
        (P.to_string protocol ^ " restart raises")
        true
        (try
           ignore
             (H.run
                (H.Setup.make ~protocol ~f:1 ~ops:4
                   ~scenario:(H.Restart_replica { pid = 1; at = 10_000L })
                   ~seed:1L ()));
           false
         with Invalid_argument _ -> true))
    [ H.Pbft; H.Ubft ]

let () =
  Alcotest.run "durability"
    [
      ( "protocol",
        [
          Alcotest.test_case "codec round-trip" `Quick test_protocol_roundtrip;
        ] );
      ( "setup",
        [
          Alcotest.test_case "Setup.make defaults match legacy literal" `Quick
            test_setup_make_matches_literal;
        ] );
      ( "checkpoints",
        [
          Alcotest.test_case "certificate quorum edges" `Quick
            test_cert_quorum_edges;
          Alcotest.test_case "minbft truncation bound" `Quick
            test_minbft_truncation_bound;
          Alcotest.test_case "interval 0 is inert" `Quick
            test_checkpointing_off_is_inert;
          Alcotest.test_case "ubft register truncation" `Quick
            test_ubft_register_truncation;
        ] );
      ( "state-transfer",
        [
          Alcotest.test_case "restart rejoins via snapshot" `Quick
            test_restart_rejoins_via_state_transfer;
          Alcotest.test_case "restart without checkpoints" `Quick
            test_restart_without_checkpoints_still_recovers;
          Alcotest.test_case "restart limited to minbft" `Quick
            test_restart_rejected_off_minbft;
        ] );
    ]
