(* Tests for the replication layer: the kv state machine, attested links,
   client plumbing, and both protocols under the harness's fault scenarios. *)

let qcheck = QCheck_alcotest.to_alcotest

(* --- kv store ---------------------------------------------------------------- *)

let test_kv_semantics () =
  let s = Thc_replication.Kv_store.create () in
  Alcotest.(check bool) "get missing" true
    (Thc_replication.Kv_store.apply s (Get "k") = Value None);
  Alcotest.(check bool) "put" true
    (Thc_replication.Kv_store.apply s (Put ("k", "v")) = Stored);
  Alcotest.(check bool) "get" true
    (Thc_replication.Kv_store.apply s (Get "k") = Value (Some "v"));
  Alcotest.(check bool) "incr fresh" true
    (Thc_replication.Kv_store.apply s (Incr "c") = Counter 1);
  Alcotest.(check bool) "incr again" true
    (Thc_replication.Kv_store.apply s (Incr "c") = Counter 2);
  Alcotest.(check bool) "incr over garbage counts from 0" true
    (Thc_replication.Kv_store.apply s (Incr "k") = Counter 1);
  Alcotest.(check bool) "delete" true
    (Thc_replication.Kv_store.apply s (Delete "k") = Stored);
  Alcotest.(check bool) "deleted gone" true
    (Thc_replication.Kv_store.apply s (Get "k") = Value None)

let test_kv_digest_reflects_content () =
  let a = Thc_replication.Kv_store.create () in
  let b = Thc_replication.Kv_store.create () in
  ignore (Thc_replication.Kv_store.apply a (Put ("x", "1")));
  ignore (Thc_replication.Kv_store.apply b (Put ("x", "1")));
  Alcotest.(check int64) "equal content equal digest"
    (Thc_replication.Kv_store.digest a)
    (Thc_replication.Kv_store.digest b);
  ignore (Thc_replication.Kv_store.apply b (Put ("y", "2")));
  Alcotest.(check bool) "different content different digest" true
    (Thc_replication.Kv_store.digest a <> Thc_replication.Kv_store.digest b)

let prop_kv_digest_order_insensitive =
  QCheck.Test.make ~name:"digest independent of insertion order" ~count:100
    QCheck.(list_of_size Gen.(1 -- 10) (pair small_string small_string))
    (fun bindings ->
      (* Distinct keys: with duplicates the last write wins and order would
         legitimately matter. *)
      let bindings =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) bindings
      in
      let build order =
        let s = Thc_replication.Kv_store.create () in
        List.iter
          (fun (k, v) -> ignore (Thc_replication.Kv_store.apply s (Put (k, v))))
          order;
        Thc_replication.Kv_store.digest s
      in
      build bindings = build (List.rev bindings))

let test_kv_op_roundtrip () =
  let ops =
    Thc_replication.Kv_store.
      [ Get "a"; Put ("b", "v"); Delete "c"; Incr "d" ]
  in
  List.iter
    (fun op ->
      Alcotest.(check bool) "op roundtrips" true
        (Thc_replication.Kv_store.decode_op (Thc_replication.Kv_store.encode_op op)
        = op))
    ops

(* --- attested links ------------------------------------------------------------- *)

let trinc_world () =
  Thc_hardware.Trinc.create_world (Thc_util.Rng.create 121L) ~n:3

let test_link_seal_dense () =
  let world = trinc_world () in
  let out =
    Thc_replication.Attested_link.Out.create
      (Thc_hardware.Trinc.trinket world ~owner:0)
  in
  let a1 = Thc_replication.Attested_link.Out.seal out "m1" in
  let a2 = Thc_replication.Attested_link.Out.seal out "m2" in
  Alcotest.(check (pair int int)) "dense counters" (1, 2) (a1.counter, a2.counter);
  Alcotest.(check int) "prev chains" 1 a2.prev;
  Alcotest.(check int) "sent log" 2
    (List.length (Thc_replication.Attested_link.Out.sent_log out))

let test_link_in_order_release () =
  let world = trinc_world () in
  let out =
    Thc_replication.Attested_link.Out.create
      (Thc_hardware.Trinc.trinket world ~owner:0)
  in
  let a1 = Thc_replication.Attested_link.Out.seal out "m1" in
  let a2 = Thc_replication.Attested_link.Out.seal out "m2" in
  let a3 = Thc_replication.Attested_link.Out.seal out "m3" in
  let inbox = Thc_replication.Attested_link.In.create ~world ~n:3 in
  Alcotest.(check int) "gap buffers" 0
    (List.length (Thc_replication.Attested_link.In.accept inbox a2));
  Alcotest.(check int) "filling the gap releases both" 2
    (List.length (Thc_replication.Attested_link.In.accept inbox a1));
  Alcotest.(check int) "third releases immediately" 1
    (List.length (Thc_replication.Attested_link.In.accept inbox a3));
  Alcotest.(check int) "delivered upto" 3
    (Thc_replication.Attested_link.In.delivered_upto inbox ~owner:0);
  Alcotest.(check int) "duplicate ignored" 0
    (List.length (Thc_replication.Attested_link.In.accept inbox a2))

let test_link_check_log () =
  let world = trinc_world () in
  let out =
    Thc_replication.Attested_link.Out.create
      (Thc_hardware.Trinc.trinket world ~owner:1)
  in
  ignore (Thc_replication.Attested_link.Out.seal out "a");
  ignore (Thc_replication.Attested_link.Out.seal out "b");
  let log = Thc_replication.Attested_link.Out.sent_log out in
  (match Thc_replication.Attested_link.check_log ~world ~owner:1 log with
  | Some [ "a"; "b" ] -> ()
  | Some _ | None -> Alcotest.fail "honest log rejected");
  (match log with
  | [ _; b ] ->
    Alcotest.(check bool) "log with hidden head rejected" true
      (Thc_replication.Attested_link.check_log ~world ~owner:1 [ b ] = None)
  | _ -> Alcotest.fail "unexpected log shape");
  Alcotest.(check bool) "wrong owner rejected" true
    (Thc_replication.Attested_link.check_log ~world ~owner:0 log = None)

let test_link_rejection_ledger () =
  (* Each rejection class charges its own ledger label, and they all roll
     up into [Ledger.rejections] — the attack catalog's observable. *)
  let world = trinc_world () in
  let ledger = Thc_hardware.Trinc.ledger world in
  let out =
    Thc_replication.Attested_link.Out.create
      (Thc_hardware.Trinc.trinket world ~owner:0)
  in
  let a1 = Thc_replication.Attested_link.Out.seal out "m1" in
  let inbox = Thc_replication.Attested_link.In.create ~world ~n:3 in
  Alcotest.(check int) "fresh accepted" 1
    (List.length (Thc_replication.Attested_link.In.accept inbox a1));
  (* replay: counter already released *)
  Alcotest.(check int) "replay dropped" 0
    (List.length (Thc_replication.Attested_link.In.accept inbox a1));
  Alcotest.(check int) "replay charged" 1
    (Thc_obsv.Ledger.count ledger "link.reject_replay");
  (* forged: well-formed fields, tag from nowhere *)
  let forged =
    Thc_hardware.Trinc.counterfeit ~owner:0 ~prev:1 ~counter:2
      ~message:"forged" ~tag:99L
  in
  Alcotest.(check int) "forged dropped" 0
    (List.length (Thc_replication.Attested_link.In.accept inbox forged));
  Alcotest.(check int) "forged charged" 1
    (Thc_obsv.Ledger.count ledger "link.reject_forged");
  (* malformed: owner outside the cluster, and a broken prev chain *)
  let bad_owner =
    Thc_hardware.Trinc.counterfeit ~owner:7 ~prev:0 ~counter:1 ~message:"x"
      ~tag:0L
  in
  let bad_prev =
    Thc_hardware.Trinc.counterfeit ~owner:1 ~prev:3 ~counter:2 ~message:"x"
      ~tag:0L
  in
  ignore (Thc_replication.Attested_link.In.accept inbox bad_owner);
  ignore (Thc_replication.Attested_link.In.accept inbox bad_prev);
  Alcotest.(check int) "malformed charged" 2
    (Thc_obsv.Ledger.count ledger "link.reject_malformed");
  Alcotest.(check bool) "rejections rolls them up" true
    (Thc_obsv.Ledger.rejections ledger >= 4)

(* --- client collector -------------------------------------------------------------- *)

let test_collector_quorum () =
  let c = Thc_replication.Command.Collector.create ~quorum:2 in
  let reply replica result : Thc_replication.Command.reply =
    { replica; rid = 0; result }
  in
  Alcotest.(check (option string)) "first vote pending" None
    (Thc_replication.Command.Collector.add c (reply 0 "r"));
  Alcotest.(check (option string)) "duplicate replica ignored" None
    (Thc_replication.Command.Collector.add c (reply 0 "r"));
  Alcotest.(check (option string)) "disagreeing vote pending" None
    (Thc_replication.Command.Collector.add c (reply 1 "other"));
  Alcotest.(check (option string)) "matching quorum completes" (Some "r")
    (Thc_replication.Command.Collector.add c (reply 2 "r"));
  Alcotest.(check bool) "marked complete" true
    (Thc_replication.Command.Collector.completed c ~rid:0);
  Alcotest.(check (option string)) "late votes ignored" None
    (Thc_replication.Command.Collector.add c (reply 3 "r"))

let test_command_validation () =
  let keyring = Thc_crypto.Keyring.create (Thc_util.Rng.create 122L) ~n:4 in
  let sr =
    Thc_replication.Command.make
      ~ident:(Thc_crypto.Keyring.secret keyring ~pid:3)
      ~rid:7
      (Thc_replication.Kv_store.Get "k")
  in
  Alcotest.(check bool) "valid request" true
    (Thc_replication.Command.valid keyring sr);
  let forged = { sr with Thc_crypto.Signature.value = { sr.value with rid = 8 } } in
  Alcotest.(check bool) "tampered request rejected" false
    (Thc_replication.Command.valid keyring forged)

(* --- end-to-end scenarios ------------------------------------------------------------- *)

let setup protocol scenario seed =
  Thc_replication.Harness.Setup.make ~protocol ~f:1 ~ops:15 ~scenario ~seed ()

let healthy o =
  o.Thc_replication.Harness.safety_violations = []
  && o.Thc_replication.Harness.liveness_violations = []
  && o.Thc_replication.Harness.completed = 15

let scenarios =
  [
    ("fault-free", Thc_replication.Harness.Fault_free);
    ("crash-leader", Thc_replication.Harness.Crash_leader 35_000L);
    ("silent-replicas", Thc_replication.Harness.Silent_replicas);
  ]

let test_minbft_scenarios () =
  List.iter
    (fun (name, scenario) ->
      let o =
        Thc_replication.Harness.run
          (setup Thc_replication.Harness.Minbft scenario 7L)
      in
      if not (healthy o) then
        Alcotest.failf "minbft %s: %d/%d completed, %d safety, %d liveness"
          name o.completed 15
          (List.length o.safety_violations)
          (List.length o.liveness_violations))
    scenarios

let test_pbft_scenarios () =
  List.iter
    (fun (name, scenario) ->
      let o =
        Thc_replication.Harness.run
          (setup Thc_replication.Harness.Pbft scenario 7L)
      in
      if not (healthy o) then
        Alcotest.failf "pbft %s: %d/%d completed, %d safety, %d liveness"
          name o.completed 15
          (List.length o.safety_violations)
          (List.length o.liveness_violations))
    scenarios

let test_minbft_beats_pbft_on_messages () =
  let m =
    Thc_replication.Harness.run
      (setup Thc_replication.Harness.Minbft
         Thc_replication.Harness.Fault_free 9L)
  in
  let p =
    Thc_replication.Harness.run
      (setup Thc_replication.Harness.Pbft
         Thc_replication.Harness.Fault_free 9L)
  in
  Alcotest.(check bool) "fewer replicas" true (m.replicas < p.replicas);
  Alcotest.(check bool) "fewer messages per op" true
    (m.messages_per_op < p.messages_per_op);
  Alcotest.(check bool) "lower mean latency" true
    (m.latency.mean < p.latency.mean)

let test_crash_leader_forces_view_change () =
  let o =
    Thc_replication.Harness.run
      (setup Thc_replication.Harness.Minbft
         (Thc_replication.Harness.Crash_leader 35_000L)
         13L)
  in
  Alcotest.(check bool) "view advanced" true (o.final_view >= 1);
  Alcotest.(check bool) "still healthy" true (healthy o)

let prop_minbft_random_seeds =
  QCheck.Test.make ~name:"minbft safe and live across seeds" ~count:5
    QCheck.int64
    (fun seed ->
      healthy
        (Thc_replication.Harness.run
           (setup Thc_replication.Harness.Minbft
              Thc_replication.Harness.Fault_free seed)))

let prop_minbft_crash_random_seeds =
  QCheck.Test.make ~name:"minbft recovers leader crashes across seeds"
    ~count:5 QCheck.int64
    (fun seed ->
      let o =
        Thc_replication.Harness.run
          (setup Thc_replication.Harness.Minbft
             (Thc_replication.Harness.Crash_leader 35_000L)
             seed)
      in
      healthy o)

let test_harness_deterministic () =
  (* Whole-cluster determinism: identical setup, identical outcome. *)
  let run () =
    Thc_replication.Harness.run
      (setup Thc_replication.Harness.Minbft
         (Thc_replication.Harness.Crash_leader 35_000L)
         21L)
  in
  let a = run () and b = run () in
  Alcotest.(check string) "identical outcomes"
    (Thc_util.Codec.encode (a.completed, a.messages, a.final_view, a.latency))
    (Thc_util.Codec.encode (b.completed, b.messages, b.final_view, b.latency))

let test_workload_deterministic () =
  Alcotest.(check bool) "same seed same workload" true
    (Thc_replication.Harness.default_workload ~ops:20 ~seed:5L
    = Thc_replication.Harness.default_workload ~ops:20 ~seed:5L)

(* --- uBFT-sim on SWMR registers ------------------------------------------------------ *)

let test_ubft_scenarios () =
  List.iter
    (fun (name, scenario) ->
      let o =
        Thc_replication.Harness.run
          (setup Thc_replication.Harness.Ubft scenario 7L)
      in
      if not (healthy o) then
        Alcotest.failf "ubft %s: %d/%d completed, %d safety, %d liveness"
          name o.completed 15
          (List.length o.safety_violations)
          (List.length o.liveness_violations))
    scenarios

let test_ubft_beats_minbft () =
  (* The "strictly stronger" edge as a measurement: the register protocol's
     3-hop common case undercuts MinBFT's 4 hops at equal f, on both the
     median and the wire bill — while spending register ops where MinBFT
     spends counter seals. *)
  let u =
    Thc_replication.Harness.run
      (setup Thc_replication.Harness.Ubft
         Thc_replication.Harness.Fault_free 9L)
  in
  let m =
    Thc_replication.Harness.run
      (setup Thc_replication.Harness.Minbft
         Thc_replication.Harness.Fault_free 9L)
  in
  let p50 o =
    match Thc_obsv.Metrics.Histogram.p50 o.Thc_replication.Harness.lat_hist with
    | Some v -> v
    | None -> Alcotest.fail "empty latency histogram"
  in
  Alcotest.(check bool) "same replica count" true (u.replicas = m.replicas);
  Alcotest.(check bool) "lower p50 latency" true (p50 u < p50 m);
  Alcotest.(check bool) "fewer messages per op" true
    (u.messages_per_op < m.messages_per_op);
  Alcotest.(check bool) "spends register ops" true (u.trusted_per_request > 0.)

let test_ubft_crash_leader_forces_view_change () =
  let o =
    Thc_replication.Harness.run
      (setup Thc_replication.Harness.Ubft
         (Thc_replication.Harness.Crash_leader 35_000L)
         13L)
  in
  Alcotest.(check bool) "view advanced" true (o.final_view >= 1);
  Alcotest.(check bool) "still healthy" true (healthy o)

let test_ubft_deterministic () =
  let run () =
    Thc_replication.Harness.run
      (setup Thc_replication.Harness.Ubft
         (Thc_replication.Harness.Crash_leader 35_000L)
         21L)
  in
  let a = run () and b = run () in
  Alcotest.(check string) "identical outcomes"
    (Thc_util.Codec.encode (a.completed, a.messages, a.final_view, a.latency))
    (Thc_util.Codec.encode (b.completed, b.messages, b.final_view, b.latency))

let prop_ubft_random_seeds =
  QCheck.Test.make ~name:"ubft safe and live across seeds" ~count:5
    QCheck.int64
    (fun seed ->
      healthy
        (Thc_replication.Harness.run
           (setup Thc_replication.Harness.Ubft
              Thc_replication.Harness.Fault_free seed)))

let test_ubft_registers_bounded () =
  (* The truncate-on-checkpoint discipline: run well past several checkpoint
     intervals and check no register grew linearly with history.  40 slots
     at checkpoint_interval 16 means a leader register that would hold 40+
     records without truncation. *)
  let f = 1 in
  let config = Thc_replication.Ubft.default_config ~f in
  let n = config.Thc_replication.Ubft.n in
  let seed = 11L in
  let rng = Thc_util.Rng.create seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:(n + 1) in
  let registers = Thc_sharedmem.Swmr.log_array ~n in
  let net =
    Thc_sim.Net.create ~n:(n + 1) ~default:(Thc_sim.Delay.Uniform (50L, 500L))
  in
  let engine = Thc_sim.Engine.create ~seed ~n:(n + 1) ~net () in
  let replicas =
    Array.init n (fun pid ->
        Thc_replication.Ubft.create_replica ~config ~keyring ~registers
          ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
          ~self:pid)
  in
  Array.iteri
    (fun pid r ->
      Thc_sim.Engine.set_behavior engine pid (Thc_replication.Ubft.replica r))
    replicas;
  let ops = 40 in
  let plan =
    List.init ops (fun i ->
        (Int64.of_int ((i + 1) * 3_000), Thc_replication.Kv_store.Incr "c"))
  in
  Thc_sim.Engine.set_behavior engine n
    (Thc_replication.Ubft.client ~rid_base:0 ~config ~keyring
       ~ident:(Thc_crypto.Keyring.secret keyring ~pid:n)
       ~plan);
  let trace =
    Thc_sim.Engine.run ~until:400_000L ~max_events:20_000_000 engine
  in
  Alcotest.(check int) "safety clean" 0
    (List.length (Thc_replication.Smr_spec.check_safety trace ~replicas:n));
  Alcotest.(check bool) "all slots executed" true
    (Array.for_all
       (fun r -> Thc_replication.Ubft.executed_upto r = ops)
       replicas);
  Array.iteri
    (fun pid r ->
      let len = Thc_replication.Ubft.register_len r in
      if len <= 0 || len > 2 * config.Thc_replication.Ubft.checkpoint_interval + 4
      then
        Alcotest.failf "replica %d register has %d records (interval %d)" pid
          len config.Thc_replication.Ubft.checkpoint_interval)
    replicas

(* --- Byzantine replica attacks ------------------------------------------------------ *)

(* A Byzantine non-leader replica with a real trinket, throwing everything it
   has: counterfeit attestations, replayed genuine attestations, prepares it
   is not entitled to send, and garbage payloads. *)
let byzantine_replica ~world ~keyring ~byz_pid () :
    Thc_replication.Minbft.msg Thc_sim.Engine.behavior =
  let out =
    Thc_replication.Attested_link.Out.create
      (Thc_hardware.Trinc.trinket world ~owner:byz_pid)
  in
  let forged_request =
    (* Self-signed request claiming to be from the real client (pid 3):
       signature will not verify as that client. *)
    Thc_crypto.Signature.seal
      (Thc_crypto.Keyring.secret keyring ~pid:byz_pid)
      ({ client = 3; rid = 99; op = Thc_replication.Kv_store.encode_op (Put ("k", "evil")) }
        : Thc_replication.Command.request)
  in
  let replays = ref 0 in
  {
    init = (fun ctx -> ctx.set_timer ~delay:1_000L ~tag:0);
    on_message =
      (fun ctx ~src:_ msg ->
        (* Replay what it hears, verbatim (bounded so the self-echo does not
           amplify without limit). *)
        if !replays < 200 then begin
          incr replays;
          ctx.broadcast msg
        end);
    on_timer =
      (fun ctx _ ->
        (* Counterfeit attestation from the leader. *)
        ctx.broadcast
          (Thc_replication.Minbft.adversarial_wire
             (Thc_hardware.Trinc.counterfeit ~owner:0 ~prev:7 ~counter:8
                ~message:"junk" ~tag:0xBADL));
        (* A prepare it is not entitled to send (not the leader). *)
        ctx.broadcast
          (Thc_replication.Minbft.adversarial_prepare ~out ~view:0 ~seq:1
             ~request:forged_request);
        (* Garbage sealed payload (undecodable proto). *)
        ctx.broadcast
          (Thc_replication.Minbft.adversarial_wire
             (Thc_hardware.Trinc.counterfeit ~owner:byz_pid ~prev:0 ~counter:1
                ~message:"not-a-proto" ~tag:1L));
        ctx.set_timer ~delay:5_000L ~tag:0);
  }

let test_minbft_byzantine_replica_flood () =
  let f = 1 in
  let config = Thc_replication.Minbft.default_config ~f in
  let n = config.Thc_replication.Minbft.n in
  let byz_pid = n - 1 in
  let seed = 41L in
  let rng = Thc_util.Rng.create seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:(n + 1) in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let net =
    Thc_sim.Net.create ~n:(n + 1) ~default:(Thc_sim.Delay.Uniform (50L, 500L))
  in
  let engine = Thc_sim.Engine.create ~seed ~n:(n + 1) ~net () in
  for pid = 0 to n - 2 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_replication.Minbft.replica
         (Thc_replication.Minbft.create_replica ~config ~keyring ~world
            ~trinket:(Thc_hardware.Trinc.trinket world ~owner:pid)
            ~self:pid))
  done;
  Thc_sim.Engine.mark_byzantine engine byz_pid;
  Thc_sim.Engine.set_behavior engine byz_pid
    (byzantine_replica ~world ~keyring ~byz_pid ());
  let plan =
    List.init 10 (fun i ->
        (Int64.of_int ((i + 1) * 5_000), Thc_replication.Kv_store.Incr "c"))
  in
  Thc_sim.Engine.set_behavior engine n
    (Thc_replication.Minbft.client ~rid_base:0 ~config ~keyring
       ~ident:(Thc_crypto.Keyring.secret keyring ~pid:n)
       ~plan);
  let trace =
    Thc_sim.Engine.run ~until:200_000L ~max_events:20_000_000 engine
  in
  Alcotest.(check int) "safety clean under flood" 0
    (List.length (Thc_replication.Smr_spec.check_safety trace ~replicas:n));
  Alcotest.(check int) "all requests complete" 0
    (List.length
       (Thc_replication.Smr_spec.check_liveness trace
          ~expected:[ (n, List.init 10 Fun.id) ]))

let test_pbft_byzantine_replica_flood () =
  (* PBFT's counterpart: a Byzantine non-leader spams forged signed wires
     and replays; 3f+1 quorums absorb it. *)
  let f = 1 in
  let config = Thc_replication.Pbft.default_config ~f in
  let n = config.Thc_replication.Pbft.n in
  let byz_pid = n - 1 in
  let seed = 43L in
  let rng = Thc_util.Rng.create seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:(n + 1) in
  let net =
    Thc_sim.Net.create ~n:(n + 1) ~default:(Thc_sim.Delay.Uniform (50L, 500L))
  in
  let engine = Thc_sim.Engine.create ~seed ~n:(n + 1) ~net () in
  for pid = 0 to n - 2 do
    Thc_sim.Engine.set_behavior engine pid
      (Thc_replication.Pbft.replica
         (Thc_replication.Pbft.create_replica ~config ~keyring
            ~ident:(Thc_crypto.Keyring.secret keyring ~pid)
            ~self:pid))
  done;
  Thc_sim.Engine.mark_byzantine engine byz_pid;
  let replays = ref 0 in
  let byz : Thc_replication.Pbft.msg Thc_sim.Engine.behavior =
    {
      init = (fun _ -> ());
      on_message =
        (fun ctx ~src:_ msg ->
          if !replays < 200 then begin
            incr replays;
            ctx.broadcast msg
          end);
      on_timer = (fun _ _ -> ());
    }
  in
  Thc_sim.Engine.set_behavior engine byz_pid byz;
  let plan =
    List.init 10 (fun i ->
        (Int64.of_int ((i + 1) * 5_000), Thc_replication.Kv_store.Incr "c"))
  in
  Thc_sim.Engine.set_behavior engine n
    (Thc_replication.Pbft.client ~rid_base:0 ~config ~keyring
       ~ident:(Thc_crypto.Keyring.secret keyring ~pid:n)
       ~plan);
  let trace = Thc_sim.Engine.run ~until:200_000L ~max_events:20_000_000 engine in
  Alcotest.(check int) "safety clean" 0
    (List.length (Thc_replication.Smr_spec.check_safety trace ~replicas:n));
  Alcotest.(check int) "liveness clean" 0
    (List.length
       (Thc_replication.Smr_spec.check_liveness trace
          ~expected:[ (n, List.init 10 Fun.id) ]))

(* --- random admissible adversaries ------------------------------------------------ *)

let run_minbft_under_adversary seed =
  let f = 1 in
  let config = Thc_replication.Minbft.default_config ~f in
  let n = config.Thc_replication.Minbft.n in
  let rng = Thc_util.Rng.create seed in
  let keyring = Thc_crypto.Keyring.create rng ~n:(n + 1) in
  let world = Thc_hardware.Trinc.create_world rng ~n in
  let net =
    Thc_sim.Net.create ~n:(n + 1) ~default:(Thc_sim.Delay.Uniform (50L, 500L))
  in
  let engine = Thc_sim.Engine.create ~seed ~n:(n + 1) ~net () in
  let adv_rng = Thc_util.Rng.create (Int64.add seed 1000L) in
  let script =
    Thc_sim.Adversary.random adv_rng ~n ~horizon:200_000L ~crash_budget:f ()
  in
  Array.iteri
    (fun pid st ->
      Thc_sim.Engine.set_behavior engine pid (Thc_replication.Minbft.replica st))
    (Array.init n (fun self ->
         Thc_replication.Minbft.create_replica ~config ~keyring ~world
           ~trinket:(Thc_hardware.Trinc.trinket world ~owner:self)
           ~self));
  let plan =
    List.init 10 (fun i ->
        (Int64.of_int ((i + 1) * 5_000), Thc_replication.Kv_store.Incr "c"))
  in
  Thc_sim.Engine.set_behavior engine n
    (Thc_replication.Minbft.client ~rid_base:0 ~config ~keyring
       ~ident:(Thc_crypto.Keyring.secret keyring ~pid:n)
       ~plan);
  Thc_sim.Adversary.install script engine;
  let trace = Thc_sim.Engine.run ~until:2_000_000L ~max_events:20_000_000 engine in
  ( Thc_replication.Smr_spec.check_safety trace ~replicas:n,
    Thc_replication.Smr_spec.check_liveness trace ~expected:[ (n, List.init 10 Fun.id) ] )

let prop_minbft_random_adversaries =
  QCheck.Test.make
    ~name:"minbft safe and live under random crashes + healed partitions"
    ~count:8 QCheck.int64
    (fun seed ->
      let safety, liveness = run_minbft_under_adversary seed in
      safety = [] && liveness = [])

(* --- ablation: non-equivocation is load-bearing ---------------------------------- *)

let test_ablation_unattested_splits () =
  let r = Thc_replication.Ablation.equivocation_splits_unattested () in
  Alcotest.(check bool) "safety violated" true (r.violations <> []);
  Alcotest.(check int) "two ops committed at seq 1" 2 r.distinct_ops_at_seq1

let test_ablation_minbft_holds () =
  let r = Thc_replication.Ablation.equivocation_fails_against_minbft () in
  Alcotest.(check int) "no safety violations" 0 (List.length r.violations);
  Alcotest.(check bool) "at most one op at seq 1" true (r.distinct_ops_at_seq1 <= 1)

let prop_ablation_across_f =
  QCheck.Test.make ~name:"ablation holds for f in 1..3" ~count:3
    QCheck.(int_range 1 3)
    (fun f ->
      let split = Thc_replication.Ablation.equivocation_splits_unattested ~f () in
      let held = Thc_replication.Ablation.equivocation_fails_against_minbft ~f () in
      split.violations <> []
      && split.distinct_ops_at_seq1 = 2
      && held.violations = []
      && held.distinct_ops_at_seq1 <= 1)

(* --- scripted faults and the replay monitor ------------------------------- *)

let test_scripted_scenario_minbft () =
  (* One replica crash (= f) plus a healed partition: MinBFT must stay safe
     and, because the script stays within the fault bound, live. *)
  let script =
    {
      Thc_sim.Adversary.events =
        [
          { at = 30_000L; action = Thc_sim.Adversary.Crash 2 };
          {
            at = 60_000L;
            action = Thc_sim.Adversary.Block_groups [ [ 0 ]; [ 1; 2 ] ];
          };
          { at = 90_000L; action = Thc_sim.Adversary.Heal };
        ];
      horizon = 120_000L;
    }
  in
  let o =
    Thc_replication.Harness.run
      (setup Thc_replication.Harness.Minbft
         (Thc_replication.Harness.Scripted script)
         17L)
  in
  Alcotest.(check int) "no safety violations" 0
    (List.length o.safety_violations);
  Alcotest.(check int) "no liveness violations" 0
    (List.length o.liveness_violations)

let test_scripted_over_budget_waives_liveness () =
  (* Crashing 2 of 3 replicas (> f) cannot keep the cluster live; the
     harness must demand safety only. *)
  let script =
    {
      Thc_sim.Adversary.events =
        [
          { at = 20_000L; action = Thc_sim.Adversary.Crash 1 };
          { at = 20_000L; action = Thc_sim.Adversary.Crash 2 };
        ];
      horizon = 100_000L;
    }
  in
  let o =
    Thc_replication.Harness.run
      (setup Thc_replication.Harness.Minbft
         (Thc_replication.Harness.Scripted script)
         19L)
  in
  Alcotest.(check int) "still safe" 0 (List.length o.safety_violations);
  Alcotest.(check int) "liveness not demanded" 0
    (List.length o.liveness_violations)

(* --- batching and multiple clients ------------------------------------------ *)

let total_trusted (o : Thc_replication.Harness.outcome) =
  List.fold_left (fun acc (_, c) -> acc + c) 0 o.trusted_ops

let test_multi_client_disjoint_rids () =
  (* Three clients, each with its own rid block; every request must complete
     and the per-client latency map must cover all three client pids. *)
  let o =
    Thc_replication.Harness.run
      {
        (setup Thc_replication.Harness.Minbft
           Thc_replication.Harness.Fault_free 23L)
        with
        clients = 3;
      }
  in
  Alcotest.(check int) "all clients' requests completed" 45 o.completed;
  Alcotest.(check int) "no safety violations" 0
    (List.length o.safety_violations);
  Alcotest.(check int) "no liveness violations" 0
    (List.length o.liveness_violations);
  Alcotest.(check (list int)) "per-client latency groups"
    [ o.replicas; o.replicas + 1; o.replicas + 2 ]
    (List.map fst o.latency_by_client);
  List.iter
    (fun (_, (s : Thc_util.Stats.summary)) ->
      Alcotest.(check int) "15 latencies per client" 15 s.count)
    o.latency_by_client

let test_batching_amortizes_attestations () =
  (* One attestation seals a whole Prepare/Commit batch, so at batch 4 the
     per-request trusted-op rate must fall strictly below batch 1's. *)
  let run batch =
    Thc_replication.Harness.run
      {
        (setup Thc_replication.Harness.Minbft
           Thc_replication.Harness.Fault_free 29L)
        with
        clients = 2;
        batch;
        interval = 1_000L;
      }
  in
  let b1 = run 1 and b4 = run 4 in
  Alcotest.(check int) "batch 1 completes all" 30 b1.completed;
  Alcotest.(check int) "batch 4 completes all" 30 b4.completed;
  Alcotest.(check bool) "fewer slots with batching" true
    (b4.commits < b1.commits);
  Alcotest.(check bool)
    (Printf.sprintf "fewer trusted ops per request (%.2f < %.2f)"
       b4.trusted_per_request b1.trusted_per_request)
    true
    (b4.trusted_per_request < b1.trusted_per_request);
  Alcotest.(check bool) "fewer trusted ops in total" true
    (total_trusted b4 < total_trusted b1)

let test_batched_safety_under_scripted_adversary () =
  (* Batch 4 with two clients under a crash (= f) plus a healed partition:
     the linearizability monitors (pairwise prefixes + dense sequential
     replay) and liveness must still pass, and attestations stay per batch:
     strictly fewer trusted ops than the same script at batch 1. *)
  let script =
    {
      Thc_sim.Adversary.events =
        [
          { at = 30_000L; action = Thc_sim.Adversary.Crash 2 };
          {
            at = 60_000L;
            action = Thc_sim.Adversary.Block_groups [ [ 0 ]; [ 1; 2 ] ];
          };
          { at = 90_000L; action = Thc_sim.Adversary.Heal };
        ];
      horizon = 120_000L;
    }
  in
  let run batch =
    Thc_replication.Harness.run
      {
        (setup Thc_replication.Harness.Minbft
           (Thc_replication.Harness.Scripted script) 31L)
        with
        clients = 2;
        batch;
      }
  in
  let b4 = run 4 in
  Alcotest.(check int) "all requests completed" 30 b4.completed;
  Alcotest.(check int) "linearizable prefixes (safety)" 0
    (List.length b4.safety_violations);
  Alcotest.(check int) "liveness within fault budget" 0
    (List.length b4.liveness_violations);
  let b1 = run 1 in
  Alcotest.(check int) "unbatched run is the baseline" 0
    (List.length b1.safety_violations);
  Alcotest.(check bool) "per-batch attestations beat per-request" true
    (total_trusted b4 < total_trusted b1)

let test_pbft_batched_under_scripted_adversary () =
  let script =
    {
      Thc_sim.Adversary.events =
        [ { at = 30_000L; action = Thc_sim.Adversary.Crash 2 } ];
      horizon = 100_000L;
    }
  in
  let o =
    Thc_replication.Harness.run
      {
        (setup Thc_replication.Harness.Pbft
           (Thc_replication.Harness.Scripted script) 37L)
        with
        clients = 2;
        batch = 4;
      }
  in
  Alcotest.(check int) "all requests completed" 30 o.completed;
  Alcotest.(check int) "no safety violations" 0
    (List.length o.safety_violations);
  Alcotest.(check int) "no liveness violations" 0
    (List.length o.liveness_violations)

(* A synthetic trace exercising the replay monitor without a protocol: one
   process that just records Executed observations. *)
let replay_trace observations =
  let engine =
    Thc_sim.Engine.create ~n:1
      ~net:(Thc_sim.Net.create ~n:1 ~default:(Thc_sim.Delay.Const 10L))
      ()
  in
  Thc_sim.Engine.set_behavior engine 0
    {
      Thc_sim.Engine.init =
        (fun ctx -> List.iter (fun obs -> ctx.output obs) observations);
      on_message = (fun _ ~src:_ _ -> ());
      on_timer = (fun _ _ -> ());
    };
  Thc_sim.Engine.run engine

let executed ~seq op =
  let store = Thc_replication.Kv_store.create () in
  Thc_sim.Obs.Executed
    {
      seq;
      op = Thc_replication.Kv_store.encode_op op;
      result =
        Thc_replication.Kv_store.encode_result
          (Thc_replication.Kv_store.apply store op);
    }

let test_state_determinism_accepts_sequential () =
  (* incr;incr replayed from scratch gives Counter 1, Counter 2 — record
     exactly that. *)
  let trace =
    replay_trace
      [
        Thc_sim.Obs.Executed
          {
            seq = 1;
            op = Thc_replication.Kv_store.encode_op (Incr "c");
            result = Thc_replication.Kv_store.encode_result (Counter 1);
          };
        Thc_sim.Obs.Executed
          {
            seq = 2;
            op = Thc_replication.Kv_store.encode_op (Incr "c");
            result = Thc_replication.Kv_store.encode_result (Counter 2);
          };
      ]
  in
  Alcotest.(check int) "clean history accepted" 0
    (List.length (Thc_replication.Smr_spec.check_state_determinism trace ~replicas:1))

let test_state_determinism_rejects_stale_result () =
  (* Both observations record the result of applying to a FRESH store, so
     the second Incr claims Counter 1 where sequential replay gives 2. *)
  let trace = replay_trace [ executed ~seq:1 (Incr "c"); executed ~seq:2 (Incr "c") ] in
  (match Thc_replication.Smr_spec.check_state_determinism trace ~replicas:1 with
  | [ { property = `Replay; _ } ] -> ()
  | vs -> Alcotest.failf "expected one replay violation, got %d" (List.length vs))

let test_state_determinism_rejects_gap () =
  let trace = replay_trace [ executed ~seq:1 (Incr "c"); executed ~seq:3 (Incr "c") ] in
  (match Thc_replication.Smr_spec.check_state_determinism trace ~replicas:1 with
  | [ { property = `Replay; _ } ] -> ()
  | vs -> Alcotest.failf "expected one replay violation, got %d" (List.length vs))

let () =
  Alcotest.run "thc_replication"
    [
      ( "kv-store",
        [
          Alcotest.test_case "semantics" `Quick test_kv_semantics;
          Alcotest.test_case "digest" `Quick test_kv_digest_reflects_content;
          Alcotest.test_case "op roundtrip" `Quick test_kv_op_roundtrip;
          qcheck prop_kv_digest_order_insensitive;
        ] );
      ( "attested-link",
        [
          Alcotest.test_case "seal dense" `Quick test_link_seal_dense;
          Alcotest.test_case "in-order release" `Quick test_link_in_order_release;
          Alcotest.test_case "check log" `Quick test_link_check_log;
          Alcotest.test_case "rejection ledger" `Quick
            test_link_rejection_ledger;
        ] );
      ( "client",
        [
          Alcotest.test_case "collector quorum" `Quick test_collector_quorum;
          Alcotest.test_case "command validation" `Quick test_command_validation;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "minbft all scenarios" `Quick test_minbft_scenarios;
          Alcotest.test_case "pbft all scenarios" `Quick test_pbft_scenarios;
          Alcotest.test_case "minbft beats pbft" `Quick test_minbft_beats_pbft_on_messages;
          Alcotest.test_case "crash forces view change" `Quick test_crash_leader_forces_view_change;
          Alcotest.test_case "workload deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "harness deterministic" `Quick test_harness_deterministic;
          qcheck prop_minbft_random_seeds;
          qcheck prop_minbft_crash_random_seeds;
          Alcotest.test_case "ubft all scenarios" `Quick test_ubft_scenarios;
          Alcotest.test_case "ubft beats minbft" `Quick test_ubft_beats_minbft;
          Alcotest.test_case "ubft crash forces view change" `Quick
            test_ubft_crash_leader_forces_view_change;
          Alcotest.test_case "ubft deterministic" `Quick test_ubft_deterministic;
          Alcotest.test_case "ubft registers bounded" `Quick
            test_ubft_registers_bounded;
          qcheck prop_ubft_random_seeds;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "byzantine replica flood" `Quick
            test_minbft_byzantine_replica_flood;
          Alcotest.test_case "pbft byzantine flood" `Quick
            test_pbft_byzantine_replica_flood;
          qcheck prop_minbft_random_adversaries;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "unattested splits" `Quick test_ablation_unattested_splits;
          Alcotest.test_case "minbft holds" `Quick test_ablation_minbft_holds;
          qcheck prop_ablation_across_f;
        ] );
      ( "scripted",
        [
          Alcotest.test_case "within budget" `Quick test_scripted_scenario_minbft;
          Alcotest.test_case "over budget waives liveness" `Quick
            test_scripted_over_budget_waives_liveness;
        ] );
      ( "batching",
        [
          Alcotest.test_case "multi-client disjoint rids" `Quick
            test_multi_client_disjoint_rids;
          Alcotest.test_case "amortizes attestations" `Quick
            test_batching_amortizes_attestations;
          Alcotest.test_case "safe under scripted adversary" `Quick
            test_batched_safety_under_scripted_adversary;
          Alcotest.test_case "pbft batched under script" `Quick
            test_pbft_batched_under_scripted_adversary;
        ] );
      ( "replay-monitor",
        [
          Alcotest.test_case "accepts sequential history" `Quick
            test_state_determinism_accepts_sequential;
          Alcotest.test_case "rejects stale result" `Quick
            test_state_determinism_rejects_stale_result;
          Alcotest.test_case "rejects gap" `Quick test_state_determinism_rejects_gap;
        ] );
    ]
