(* Unit and property tests for Thc_util: rng, heap, stats, table, codec. *)

let qcheck = QCheck_alcotest.to_alcotest

(* --- rng ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Thc_util.Rng.create 42L in
  let b = Thc_util.Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same seed, same stream" (Thc_util.Rng.next_int64 a)
      (Thc_util.Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Thc_util.Rng.create 1L in
  let b = Thc_util.Rng.create 2L in
  Alcotest.(check bool)
    "different seeds diverge" true
    (Thc_util.Rng.next_int64 a <> Thc_util.Rng.next_int64 b)

let test_rng_split_independent () =
  let parent = Thc_util.Rng.create 7L in
  let child = Thc_util.Rng.split parent in
  let child_head = Thc_util.Rng.next_int64 child in
  (* Re-derive: same split point yields the same child stream. *)
  let parent' = Thc_util.Rng.create 7L in
  let child' = Thc_util.Rng.split parent' in
  Alcotest.(check int64) "split is deterministic" child_head
    (Thc_util.Rng.next_int64 child')

let test_rng_int_bounds () =
  let g = Thc_util.Rng.create 3L in
  for _ = 1 to 1000 do
    let x = Thc_util.Rng.int g 17 in
    if x < 0 || x >= 17 then Alcotest.fail "Rng.int out of bounds"
  done

let test_rng_int_in_bounds () =
  let g = Thc_util.Rng.create 4L in
  for _ = 1 to 1000 do
    let x = Thc_util.Rng.int_in g (-5) 5 in
    if x < -5 || x > 5 then Alcotest.fail "Rng.int_in out of bounds"
  done

let test_rng_int_rejects_bad_bound () =
  let g = Thc_util.Rng.create 5L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Thc_util.Rng.int g 0))

let test_rng_float_bounds () =
  let g = Thc_util.Rng.create 6L in
  for _ = 1 to 1000 do
    let x = Thc_util.Rng.float g 2.5 in
    if x < 0.0 || x >= 2.5 then Alcotest.fail "Rng.float out of bounds"
  done

let test_rng_exponential_positive () =
  let g = Thc_util.Rng.create 8L in
  for _ = 1 to 1000 do
    if Thc_util.Rng.exponential g ~mean:100.0 < 0.0 then
      Alcotest.fail "negative exponential draw"
  done

let test_rng_exponential_mean () =
  let g = Thc_util.Rng.create 9L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Thc_util.Rng.exponential g ~mean:50.0
  done;
  let mean = !sum /. float_of_int n in
  if mean < 45.0 || mean > 55.0 then
    Alcotest.failf "exponential mean off: %.2f" mean

let test_rng_shuffle_permutation () =
  let g = Thc_util.Rng.create 10L in
  let a = Array.init 50 (fun i -> i) in
  Thc_util.Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle permutes" (Array.init 50 (fun i -> i)) sorted

let test_rng_pick_member () =
  let g = Thc_util.Rng.create 11L in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    let p = Thc_util.Rng.pick g a in
    if not (Array.exists (String.equal p) a) then Alcotest.fail "pick outside"
  done

let test_rng_pick_empty () =
  let g = Thc_util.Rng.create 12L in
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Thc_util.Rng.pick g [||]))

let prop_rng_bool_balanced =
  QCheck.Test.make ~name:"rng bool roughly balanced" ~count:20
    QCheck.(int64)
    (fun seed ->
      let g = Thc_util.Rng.create seed in
      let trues = ref 0 in
      for _ = 1 to 1000 do
        if Thc_util.Rng.bool g then incr trues
      done;
      !trues > 350 && !trues < 650)

(* --- heap ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Thc_util.Heap.create ~compare in
  Alcotest.(check bool) "starts empty" true (Thc_util.Heap.is_empty h);
  Thc_util.Heap.push h 3 "c";
  Thc_util.Heap.push h 1 "a";
  Thc_util.Heap.push h 2 "b";
  Alcotest.(check int) "length" 3 (Thc_util.Heap.length h);
  Alcotest.(check (option (pair int string))) "peek" (Some (1, "a"))
    (Thc_util.Heap.peek h);
  Alcotest.(check (option (pair int string))) "pop 1" (Some (1, "a"))
    (Thc_util.Heap.pop h);
  Alcotest.(check (option (pair int string))) "pop 2" (Some (2, "b"))
    (Thc_util.Heap.pop h);
  Alcotest.(check (option (pair int string))) "pop 3" (Some (3, "c"))
    (Thc_util.Heap.pop h);
  Alcotest.(check (option (pair int string))) "pop empty" None
    (Thc_util.Heap.pop h)

let test_heap_duplicate_keys () =
  let h = Thc_util.Heap.create ~compare in
  Thc_util.Heap.push h 1 "first";
  Thc_util.Heap.push h 1 "second";
  Alcotest.(check int) "two entries" 2 (Thc_util.Heap.length h);
  ignore (Thc_util.Heap.pop h);
  ignore (Thc_util.Heap.pop h);
  Alcotest.(check bool) "drained" true (Thc_util.Heap.is_empty h)

let test_heap_clear () =
  let h = Thc_util.Heap.create ~compare in
  for i = 1 to 10 do
    Thc_util.Heap.push h i i
  done;
  Thc_util.Heap.clear h;
  Alcotest.(check bool) "cleared" true (Thc_util.Heap.is_empty h)

let test_heap_to_sorted_list_nondestructive () =
  let h = Thc_util.Heap.create ~compare in
  List.iter (fun k -> Thc_util.Heap.push h k ()) [ 5; 2; 9; 1 ];
  let keys = List.map fst (Thc_util.Heap.to_sorted_list h) in
  Alcotest.(check (list int)) "sorted listing" [ 1; 2; 5; 9 ] keys;
  Alcotest.(check int) "heap untouched" 4 (Thc_util.Heap.length h)

let prop_heap_drains_sorted =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun keys ->
      let h = Thc_util.Heap.create ~compare in
      List.iter (fun k -> Thc_util.Heap.push h k k) keys;
      let rec drain acc =
        match Thc_util.Heap.pop h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

(* --- calendar queue --------------------------------------------------------- *)

module Cq = Thc_util.Calendar_queue

let drain_cq q =
  let rec go acc =
    match Cq.pop q with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []

let test_cq_tie_break () =
  (* Equal virtual times pop in insertion (tie) order, interleaved with
     later times across bucket and overflow boundaries. *)
  let q = Cq.create ~nbuckets:4 ~width:8 ~null:"" () in
  Cq.push q ~time:50 ~tie:1 "a";
  Cq.push q ~time:50 ~tie:2 "b";
  Cq.push q ~time:7 ~tie:3 "c";
  Cq.push q ~time:50 ~tie:4 "d";
  Cq.push q ~time:1_000_000 ~tie:5 "e";
  Alcotest.(check (list string))
    "ascending (time, tie)"
    [ "c"; "a"; "b"; "d"; "e" ]
    (List.map (fun (_, _, v) -> v) (drain_cq q))

let test_cq_past_time_push () =
  (* After the cursor has advanced, an earlier-time push still pops
     before everything later (it lands in the cursor bucket). *)
  let q = Cq.create ~nbuckets:8 ~width:16 ~null:0 () in
  Cq.push q ~time:1000 ~tie:1 1;
  Cq.push q ~time:2000 ~tie:2 2;
  Alcotest.(check (option (triple int int int)))
    "first pop" (Some (1000, 1, 1)) (Cq.pop q);
  Cq.push q ~time:5 ~tie:3 3;
  Alcotest.(check (option (triple int int int)))
    "past-time entry pops next" (Some (5, 3, 3)) (Cq.pop q);
  Alcotest.(check (option (triple int int int)))
    "then the later one" (Some (2000, 2, 2)) (Cq.pop q)

let test_cq_overflow_re_anchor () =
  (* Events far past the year go to the overflow heap; draining the
     calendar re-anchors the year there and keeps global order. *)
  let q = Cq.create ~nbuckets:4 ~width:4 ~null:0 () in
  let year = 4 * 4 in
  Cq.push q ~time:(year * 1000) ~tie:1 1;
  Cq.push q ~time:3 ~tie:2 2;
  Cq.push q ~time:(year * 1000 + 1) ~tie:3 3;
  Cq.push q ~time:((year * 2000) + 5) ~tie:4 4;
  Alcotest.(check (list int))
    "order across re-anchors" [ 2; 1; 3; 4 ]
    (List.map (fun (_, _, v) -> v) (drain_cq q));
  (* Pushes after the re-anchor land relative to the new year. *)
  Cq.push q ~time:((year * 2000) + 6) ~tie:5 5;
  Alcotest.(check (option (triple int int int)))
    "post-re-anchor push" (Some ((year * 2000) + 6, 5, 5)) (Cq.pop q)

let test_cq_cancel () =
  let q = Cq.create ~null:0 () in
  Cq.push q ~time:10 ~tie:1 1;
  Cq.push q ~time:20 ~tie:2 2;
  Cq.push q ~time:1_000_000_000 ~tie:3 3;
  Cq.cancel q ~tie:1;
  Cq.cancel q ~tie:3;
  Alcotest.(check int) "length sees cancellations" 1 (Cq.length q);
  Alcotest.(check (list int))
    "cancelled entries never pop" [ 2 ]
    (List.map (fun (_, _, v) -> v) (drain_cq q));
  Alcotest.(check bool) "empty after drain" true (Cq.is_empty q)

let test_cq_degenerate_geometry () =
  (* nbuckets = 1, width = 1: everything funnels through one slice and
     the overflow heap; ordering must survive. *)
  let q = Cq.create ~nbuckets:1 ~width:1 ~null:0 () in
  List.iteri
    (fun i time -> Cq.push q ~time ~tie:i time)
    [ 9; 2; 2; 77; 0; 1_000_000 ];
  Alcotest.(check (list int))
    "sorted drain" [ 0; 2; 2; 9; 77; 1_000_000 ]
    (List.map (fun (t, _, _) -> t) (drain_cq q))

(* Random push/pop/cancel/peek interleavings, cross-checked against the
   binary heap (plus a cancelled-tie set) as the reference model.  Times
   are drawn from a mixture of same-timestamp, near-future and far-future
   offsets from the last popped time, so bucket rotation, cursor
   clamping and overflow re-anchoring all get exercised. *)
let run_cq_scenario seed steps =
  let rng = Thc_util.Rng.create seed in
  let q = Cq.create ~nbuckets:16 ~width:8 ~null:(-1) () in
  let model = Thc_util.Heap.create ~compare in
  let model_cancelled = Hashtbl.create 16 in
  let live_ties = ref [] in
  let tie = ref 0 in
  let clock = ref 0 in
  let model_pop () =
    let rec go () =
      match Thc_util.Heap.pop model with
      | None -> None
      | Some ((time, k), v) ->
        if Hashtbl.mem model_cancelled k then begin
          Hashtbl.remove model_cancelled k;
          go ()
        end
        else Some (time, k, v)
    in
    go ()
  in
  for step = 1 to steps do
    match Thc_util.Rng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
      (* push *)
      let offset =
        match Thc_util.Rng.int rng 4 with
        | 0 -> 0 (* same timestamp: tie-break path *)
        | 1 -> Thc_util.Rng.int rng 100 (* same/nearby bucket *)
        | 2 -> Thc_util.Rng.int rng 5_000 (* bucket rotation *)
        | _ -> 1_000_000 + Thc_util.Rng.int rng 1_000_000 (* overflow *)
      in
      incr tie;
      let time = !clock + offset in
      Cq.push q ~time ~tie:!tie !tie;
      Thc_util.Heap.push model (time, !tie) !tie;
      live_ties := !tie :: !live_ties
    | 4 | 5 | 6 | 7 ->
      (* pop, compare against the model *)
      let got = Cq.pop q in
      let expect = model_pop () in
      (match (got, expect) with
      | None, None -> ()
      | Some (t, k, v), Some (t', k', v') when t = t' && k = k' && v = v' ->
        clock := t;
        live_ties := List.filter (fun x -> x <> k) !live_ties
      | _ ->
        QCheck.Test.fail_reportf "step %d: pop mismatch (seed %Ld)" step seed)
    | 8 -> (
      (* cancel a random live entry in both *)
      match !live_ties with
      | [] -> ()
      | ties ->
        let victim = List.nth ties (Thc_util.Rng.int rng (List.length ties)) in
        Cq.cancel q ~tie:victim;
        Hashtbl.replace model_cancelled victim ();
        live_ties := List.filter (fun x -> x <> victim) !live_ties)
    | _ ->
      (* peek agrees with length-preserving model minimum *)
      let len_before = Cq.length q in
      (match (Cq.peek q, model_pop ()) with
      | None, None -> ()
      | Some (t, k, v), Some (t', k', v') when t = t' && k = k' && v = v' ->
        (* put the model entry back; peek must not consume *)
        Thc_util.Heap.push model (t', k') v'
      | _ ->
        QCheck.Test.fail_reportf "step %d: peek mismatch (seed %Ld)" step seed);
      if Cq.length q <> len_before then
        QCheck.Test.fail_reportf "step %d: peek changed length" step
  done;
  (* Drain both to the end: every remaining entry must agree. *)
  let rec drain () =
    match (Cq.pop q, model_pop ()) with
    | None, None -> ()
    | Some (t, k, v), Some (t', k', v') when t = t' && k = k' && v = v' ->
      drain ()
    | _ -> QCheck.Test.fail_reportf "drain mismatch (seed %Ld)" seed
  in
  drain ();
  true

let prop_cq_matches_heap_model =
  QCheck.Test.make ~name:"calendar queue matches heap model" ~count:60
    QCheck.(int64)
    (fun seed -> run_cq_scenario seed 800)

(* --- stats ------------------------------------------------------------------ *)

let test_stats_known () =
  let s = Thc_util.Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.max;
  Alcotest.(check (float 1e-9)) "p50" 2.0 s.p50

let test_stats_empty () =
  let s = Thc_util.Stats.summarize [] in
  Alcotest.(check int) "count" 0 s.count;
  Alcotest.(check (float 1e-9)) "mean" 0.0 s.mean

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "constant sample" 0.0
    (Thc_util.Stats.stddev [ 5.0; 5.0; 5.0 ]);
  Alcotest.(check (float 1e-6)) "known stddev" 2.0
    (Thc_util.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_percentile_singleton () =
  Alcotest.(check (float 1e-9)) "p99 of singleton" 7.0
    (Thc_util.Stats.percentile [| 7.0 |] 0.99)

let test_stats_percentile_empty () =
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Thc_util.Stats.percentile [||] 0.5))

let prop_stats_bounds =
  QCheck.Test.make ~name:"percentiles lie within min..max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Thc_util.Stats.summarize xs in
      s.p50 >= s.min && s.p50 <= s.max && s.p99 >= s.min && s.p99 <= s.max)

(* --- table ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Thc_util.Table.create [ "a"; "long-header" ] in
  Thc_util.Table.add_row t [ "1"; "2" ];
  Thc_util.Table.add_row t [ "333" ];
  let rendered = Thc_util.Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length rendered > 0
    && String.index_opt rendered 'l' <> None);
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "header + rule + 2 rows + trailing" 5 (List.length lines)

let test_table_too_many_cells () =
  let t = Thc_util.Table.create [ "only" ] in
  Alcotest.check_raises "overflow row"
    (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Thc_util.Table.add_row t [ "a"; "b" ])

(* --- codec ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let v = (1, "two", [ 3L; 4L ], Some 5.0) in
  Alcotest.(check bool) "roundtrips" true
    (Thc_util.Codec.decode (Thc_util.Codec.encode v) = v)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec roundtrips arbitrary data" ~count:200
    QCheck.(pair (list (pair int string)) (option string))
    (fun v -> Thc_util.Codec.decode (Thc_util.Codec.encode v) = v)

let test_codec_canonical () =
  (* Equal values encode equally — the property Obs comparisons rely on. *)
  let a = Thc_util.Codec.encode (1, "x") in
  let b = Thc_util.Codec.encode (1, "x") in
  Alcotest.(check string) "canonical encoding" a b

(* --- sexp ----------------------------------------------------------------- *)

let test_sexp_print_parse () =
  let s =
    Thc_util.Sexp.(
      list
        [
          atom "repro"; list [ atom "seed"; int64_atom 42L ];
          list [ atom "events"; list [ int_atom 3; atom "heal" ] ];
        ])
  in
  let text = Thc_util.Sexp.to_string s in
  Alcotest.(check string)
    "canonical rendering" "(repro (seed 42) (events (3 heal)))" text;
  Alcotest.(check bool)
    "parses back" true
    (Thc_util.Sexp.of_string_exn text = s)

let test_sexp_quoting () =
  let s = Thc_util.Sexp.atom "has space (and parens) \"quote\"" in
  let text = Thc_util.Sexp.to_string s in
  Alcotest.(check bool) "round-trips" true (Thc_util.Sexp.of_string_exn text = s)

let test_sexp_comments_and_whitespace () =
  let text = "; a comment\n (a ; inline\n  b)\n" in
  Alcotest.(check bool)
    "comments ignored" true
    (Thc_util.Sexp.of_string_exn text
    = Thc_util.Sexp.(list [ atom "a"; atom "b" ]))

let test_sexp_rejects_trailing () =
  match Thc_util.Sexp.of_string "(a) (b)" with
  | Ok _ -> Alcotest.fail "accepted two top-level sexps"
  | Error _ -> ()

let test_sexp_hum_parses_back () =
  let s =
    Thc_util.Sexp.(
      list
        [
          atom "adversary";
          list [ atom "horizon"; int64_atom 100_000L ];
          list
            (atom "events"
            :: List.init 8 (fun i ->
                   list [ int_atom (i * 1000); list [ atom "crash"; int_atom i ] ]));
        ])
  in
  Alcotest.(check bool)
    "human rendering parses to same value" true
    (Thc_util.Sexp.of_string_exn (Thc_util.Sexp.to_string_hum s) = s)

let sexp_gen =
  let open QCheck.Gen in
  let atom_gen =
    oneof
      [
        map Thc_util.Sexp.atom (string_size ~gen:printable (int_range 0 12));
        map Thc_util.Sexp.int_atom int;
      ]
  in
  sized
  @@ fix (fun self size ->
         if size <= 0 then atom_gen
         else
           frequency
             [
               (1, atom_gen);
               ( 2,
                 map Thc_util.Sexp.list
                   (list_size (int_range 0 4) (self (size / 2))) );
             ])

let prop_sexp_roundtrip =
  QCheck.Test.make ~name:"sexp print/parse round-trips" ~count:200
    (QCheck.make sexp_gen)
    (fun s ->
      Thc_util.Sexp.of_string_exn (Thc_util.Sexp.to_string s) = s
      && Thc_util.Sexp.of_string_exn (Thc_util.Sexp.to_string_hum s) = s)

let () =
  Alcotest.run "thc_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split deterministic" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "int bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick member" `Quick test_rng_pick_member;
          Alcotest.test_case "pick empty" `Quick test_rng_pick_empty;
          qcheck prop_rng_bool_balanced;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic order" `Quick test_heap_basic;
          Alcotest.test_case "duplicate keys" `Quick test_heap_duplicate_keys;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "sorted listing" `Quick test_heap_to_sorted_list_nondestructive;
          qcheck prop_heap_drains_sorted;
        ] );
      ( "calendar-queue",
        [
          Alcotest.test_case "tie-break at equal times" `Quick test_cq_tie_break;
          Alcotest.test_case "past-time push" `Quick test_cq_past_time_push;
          Alcotest.test_case "overflow re-anchor" `Quick
            test_cq_overflow_re_anchor;
          Alcotest.test_case "cancel" `Quick test_cq_cancel;
          Alcotest.test_case "degenerate geometry" `Quick
            test_cq_degenerate_geometry;
          qcheck prop_cq_matches_heap_model;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known values" `Quick test_stats_known;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile singleton" `Quick test_stats_percentile_singleton;
          Alcotest.test_case "percentile empty" `Quick test_stats_percentile_empty;
          qcheck prop_stats_bounds;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "overflow" `Quick test_table_too_many_cells;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "canonical" `Quick test_codec_canonical;
          qcheck prop_codec_roundtrip;
        ] );
      ( "sexp",
        [
          Alcotest.test_case "print/parse" `Quick test_sexp_print_parse;
          Alcotest.test_case "quoting" `Quick test_sexp_quoting;
          Alcotest.test_case "comments" `Quick test_sexp_comments_and_whitespace;
          Alcotest.test_case "rejects trailing" `Quick test_sexp_rejects_trailing;
          Alcotest.test_case "hum parses back" `Quick test_sexp_hum_parses_back;
          qcheck prop_sexp_roundtrip;
        ] );
    ]
