(* Tests for the Byzantine attack catalog: stable attack names, the paper's
   prediction holding on both targets, deterministic thc-attack/v1 exports,
   and the catalog's fault-explorer harness registrations. *)

module A = Thc_byz.Attack
module M = Thc_byz.Matrix

let test_names_stable () =
  (* The CLI/JSONL identifiers are persisted in exports and repro files —
     this pins them. *)
  Alcotest.(check (list string))
    "catalog order and spelling"
    [
      "equivocation"; "replay"; "reuse"; "mismatched-vc"; "selective-send";
      "silent-then-lie";
    ]
    (List.map A.name A.all);
  List.iter
    (fun k ->
      Alcotest.(check bool) "of_name inverts name" true
        (A.of_name (A.name k) = Some k))
    A.all;
  Alcotest.(check (list string))
    "register catalog order and spelling"
    [ "register-forge"; "ack-forge"; "stale-read"; "withheld-append" ]
    (List.map A.name A.ubft_all);
  List.iter
    (fun k ->
      Alcotest.(check bool) "of_name inverts name" true
        (A.of_name (A.name k) = Some k))
    A.ubft_all;
  Alcotest.(check bool) "unknown name rejected" true (A.of_name "melt" = None);
  List.iter
    (fun t ->
      Alcotest.(check bool) "target name inverts" true
        (A.target_of_name (A.target_name t) = Some t))
    [ A.Minbft; A.Unattested; A.Ubft ]

let test_applies_partitions_catalogs () =
  List.iter
    (fun attack ->
      Alcotest.(check bool) "log kinds hit minbft" true
        (A.applies ~target:A.Minbft ~attack);
      Alcotest.(check bool) "log kinds skip ubft" false
        (A.applies ~target:A.Ubft ~attack))
    A.all;
  List.iter
    (fun attack ->
      Alcotest.(check bool) "register kinds hit ubft" true
        (A.applies ~target:A.Ubft ~attack);
      Alcotest.(check bool) "register kinds skip minbft" false
        (A.applies ~target:A.Minbft ~attack))
    A.ubft_all

let test_attack_bounces_off_minbft () =
  let r = A.run ~target:A.Minbft ~attack:A.Equivocate () in
  Alcotest.(check int) "no safety violation" 0 r.A.safety_violations;
  Alcotest.(check int) "no fork at seq 1" 1 r.A.distinct_ops_at_seq1;
  Alcotest.(check bool) "hardware refused something" true (r.A.rejections > 0);
  Alcotest.(check bool) "honest client still served" true r.A.client_finished;
  Alcotest.(check bool) "prediction holds" true (A.holds r)

let test_attack_forks_unattested () =
  let r = A.run ~target:A.Unattested ~attack:A.Equivocate () in
  Alcotest.(check bool) "safety violated" true (r.A.safety_violations > 0);
  Alcotest.(check bool) "divergent commit is concrete" true
    (r.A.distinct_ops_at_seq1 > 1);
  Alcotest.(check bool) "prediction holds" true (A.holds r)

let test_run_deterministic () =
  let run () = A.run ~seed:7L ~target:A.Minbft ~attack:A.Replay_stale () in
  Alcotest.(check bool) "identical results" true (run () = run ())

let test_register_attacks_bounce_off_ubft () =
  (* The Figure 1 step above trusted logs: every register attack leaves
     safety intact and an ACL refusal in the ledger — the forgery has no
     interface, so the adversary is reduced to omission. *)
  List.iter
    (fun attack ->
      let r = A.run ~target:A.Ubft ~attack () in
      Alcotest.(check int)
        (A.name attack ^ " no safety violation")
        0 r.A.safety_violations;
      Alcotest.(check bool)
        (A.name attack ^ " ACL refused the forgery probe")
        true (r.A.rejections > 0);
      Alcotest.(check bool)
        (A.name attack ^ " honest client still served")
        true r.A.client_finished;
      Alcotest.(check bool) (A.name attack ^ " prediction holds") true
        (A.holds r))
    A.ubft_all

let test_ubft_run_deterministic () =
  let run () = A.run ~seed:3L ~target:A.Ubft ~attack:A.Register_forge () in
  Alcotest.(check bool) "identical results" true (run () = run ())

let small_sweep () =
  M.sweep ~seeds:[ 1L ] ~timings:[ 5_000L ]
    ~attacks:[ A.Equivocate; A.Reuse_attestation ]
    ~targets:[ A.Minbft; A.Unattested ] ()

let test_matrix_export_deterministic () =
  let lines () = M.to_jsonl (small_sweep ()) in
  Alcotest.(check (list string)) "byte-identical JSONL" (lines ()) (lines ())

let test_matrix_applies_filter () =
  (* A mixed sweep produces cells only for catalog-matching pairs: the six
     log kinds x {minbft, unattested} plus the four register kinds x ubft —
     never a register kind against minbft or vice versa. *)
  let m =
    M.sweep ~seeds:[ 1L ] ~timings:[ 5_000L ]
      ~attacks:(A.all @ A.ubft_all)
      ~targets:[ A.Minbft; A.Unattested; A.Ubft ] ()
  in
  Alcotest.(check int) "cells" (List.length A.all * 2 + List.length A.ubft_all)
    (List.length m.M.cells);
  Alcotest.(check bool) "all cells hold" true (M.all_hold m);
  List.iter
    (fun c ->
      Alcotest.(check bool) "every cell is in-catalog" true
        (A.applies ~target:c.M.result.A.target ~attack:c.M.result.A.attack))
    m.M.cells

let test_matrix_schema () =
  let m = small_sweep () in
  Alcotest.(check int) "cell count" 4 (List.length m.M.cells);
  Alcotest.(check bool) "all cells hold" true (M.all_hold m);
  match M.to_jsonl m with
  | [] -> Alcotest.fail "empty export"
  | header :: cells ->
    let j = Result.get_ok (Thc_obsv.Json.parse header) in
    let str k = Option.bind (Thc_obsv.Json.member k j) Thc_obsv.Json.to_str in
    Alcotest.(check (option string)) "schema" (Some "thc-attack/v1")
      (str "schema");
    Alcotest.(check (option string)) "type" (Some "attack-sweep") (str "type");
    List.iter
      (fun line ->
        let c = Result.get_ok (Thc_obsv.Json.parse line) in
        Alcotest.(check (option string))
          "cell type" (Some "cell")
          (Option.bind (Thc_obsv.Json.member "type" c) Thc_obsv.Json.to_str))
      cells

let empty_script = { Thc_sim.Adversary.events = []; horizon = 0L }

let test_harness_registration () =
  (* Every (attack, target) cell is also a fault-explorer harness; the
     MinBFT side must pass under the empty script, the ablated side fail. *)
  List.iter
    (fun attack ->
      let aname = A.name attack in
      let get n =
        match Thc_check.Harness.find n with
        | Some h -> h
        | None -> Alcotest.failf "harness %s not registered" n
      in
      let clean = get ("minbft-" ^ aname) in
      let broken = get ("unattested-" ^ aname) in
      let run (h : Thc_check.Harness.t) =
        (h.Thc_check.Harness.run ~seed:1L ~script:empty_script ())
          .Thc_check.Harness.verdict
      in
      Alcotest.(check bool)
        (aname ^ " clean side passes")
        false
        (Thc_check.Monitor.failed (run clean));
      Alcotest.(check bool)
        (aname ^ " broken side fails")
        true
        (Thc_check.Monitor.failed (run broken)))
    [ A.Equivocate; A.Selective_send ]

let test_ubft_harness_registration () =
  List.iter
    (fun attack ->
      let aname = A.name attack in
      match Thc_check.Harness.find ("ubft-" ^ aname) with
      | None -> Alcotest.failf "harness ubft-%s not registered" aname
      | Some h ->
        Alcotest.(check bool)
          (aname ^ " clean under empty script")
          false
          (Thc_check.Monitor.failed
             (h.Thc_check.Harness.run ~seed:1L ~script:empty_script ())
               .Thc_check.Harness.verdict))
    [ A.Register_forge; A.Withheld_append ]

(* --- the checkpoint/state-transfer family -------------------------------- *)

let test_ckpt_catalog () =
  Alcotest.(check (list string))
    "ckpt catalog order and spelling"
    [ "forged-checkpoint"; "stale-transfer"; "join-equivocation" ]
    (List.map A.name A.ckpt_all);
  List.iter
    (fun k ->
      Alcotest.(check bool) "of_name inverts name" true
        (A.of_name (A.name k) = Some k);
      Alcotest.(check bool) "hits minbft" true
        (A.applies ~target:A.Minbft ~attack:k);
      Alcotest.(check bool) "hits unattested" true
        (A.applies ~target:A.Unattested ~attack:k);
      Alcotest.(check bool) "skips ubft" false
        (A.applies ~target:A.Ubft ~attack:k))
    A.ckpt_all;
  (* The sweep grids are pinned to [all]'s length — the ckpt kinds must not
     leak into it. *)
  List.iter
    (fun k -> Alcotest.(check bool) "not in all" false (List.mem k A.all))
    A.ckpt_all

let ckpt_label = function
  | A.Forged_checkpoint -> "ckpt.reject_forged"
  | A.Stale_transfer -> "ckpt.reject_stale"
  | A.Join_equivocation -> "ckpt.reject_suffix_equivocation"
  | _ -> assert false

let test_ckpt_bounces_off_minbft () =
  List.iter
    (fun attack ->
      let aname = A.name attack in
      let r = A.run ~target:A.Minbft ~attack () in
      Alcotest.(check int) (aname ^ ": no safety violation") 0
        r.A.safety_violations;
      Alcotest.(check bool) (aname ^ ": hardware refused something") true
        (r.A.rejections > 0);
      (* Not just any refusal: the ledger row naming this family's defense
         (certificate check, NVRAM floor, donor quorum) must be present. *)
      Alcotest.(check bool)
        (aname ^ ": " ^ ckpt_label attack ^ " in the ledger")
        true
        (List.mem_assoc (ckpt_label attack) r.A.trusted_ops);
      Alcotest.(check bool) (aname ^ ": honest client still served") true
        r.A.client_finished;
      Alcotest.(check bool) (aname ^ ": paper prediction holds") true
        (A.holds r))
    A.ckpt_all

let test_ckpt_forks_unattested () =
  List.iter
    (fun attack ->
      let aname = A.name attack in
      let r = A.run ~target:A.Unattested ~attack () in
      Alcotest.(check bool) (aname ^ ": state transfer forked the service")
        true
        (r.A.safety_violations > 0);
      Alcotest.(check int) (aname ^ ": nothing to refuse") 0 r.A.rejections;
      Alcotest.(check bool) (aname ^ ": paper prediction holds") true
        (A.holds r))
    A.ckpt_all

let test_ckpt_deterministic () =
  let digest (r : A.result) =
    ( r.A.safety_violations, r.A.rejections, r.A.commits, r.A.messages,
      r.A.duration_us, r.A.trusted_ops )
  in
  List.iter
    (fun target ->
      let a = A.run ~seed:7L ~target ~attack:A.Forged_checkpoint () in
      let b = A.run ~seed:7L ~target ~attack:A.Forged_checkpoint () in
      Alcotest.(check bool) "same seed, same run" true (digest a = digest b))
    [ A.Minbft; A.Unattested ]

let test_ckpt_harness_registration () =
  List.iter
    (fun attack ->
      let aname = A.name attack in
      let get n =
        match Thc_check.Harness.find n with
        | Some h -> h
        | None -> Alcotest.failf "harness %s not registered" n
      in
      let clean = get ("minbft-" ^ aname) in
      let broken = get ("unattested-" ^ aname) in
      let run (h : Thc_check.Harness.t) =
        (h.Thc_check.Harness.run ~seed:1L ~script:empty_script ())
          .Thc_check.Harness.verdict
      in
      Alcotest.(check bool)
        (aname ^ " clean side passes")
        false
        (Thc_check.Monitor.failed (run clean));
      Alcotest.(check bool)
        (aname ^ " broken side fails")
        true
        (Thc_check.Monitor.failed (run broken)))
    A.ckpt_all

let () =
  Alcotest.run "thc_byz"
    [
      ( "catalog",
        [
          Alcotest.test_case "names stable" `Quick test_names_stable;
          Alcotest.test_case "applies partitions catalogs" `Quick
            test_applies_partitions_catalogs;
          Alcotest.test_case "bounces off minbft" `Quick
            test_attack_bounces_off_minbft;
          Alcotest.test_case "forks unattested" `Quick
            test_attack_forks_unattested;
          Alcotest.test_case "bounces off ubft" `Quick
            test_register_attacks_bounce_off_ubft;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "ubft deterministic" `Quick
            test_ubft_run_deterministic;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "export deterministic" `Quick
            test_matrix_export_deterministic;
          Alcotest.test_case "thc-attack/v1 schema" `Quick test_matrix_schema;
          Alcotest.test_case "applies filter" `Quick test_matrix_applies_filter;
        ] );
      ( "harness",
        [
          Alcotest.test_case "registered in explorer" `Quick
            test_harness_registration;
          Alcotest.test_case "ubft registered in explorer" `Quick
            test_ubft_harness_registration;
        ] );
      ( "ckpt",
        [
          Alcotest.test_case "catalog stable" `Quick test_ckpt_catalog;
          Alcotest.test_case "bounces off minbft" `Quick
            test_ckpt_bounces_off_minbft;
          Alcotest.test_case "forks unattested" `Quick
            test_ckpt_forks_unattested;
          Alcotest.test_case "deterministic" `Quick test_ckpt_deterministic;
          Alcotest.test_case "registered in explorer" `Quick
            test_ckpt_harness_registration;
        ] );
    ]
