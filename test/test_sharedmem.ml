(* Tests for the shared-memory-with-ACL substrate: SWMR registers, sticky
   bits, PEATS tuple spaces, and the ACL machinery that keeps Byzantine
   processes out of other processes' objects. *)

let qcheck = QCheck_alcotest.to_alcotest

let keyring () = Thc_crypto.Keyring.create (Thc_util.Rng.create 31L) ~n:4

let ident k pid = Thc_crypto.Keyring.secret k ~pid

(* --- ACL --------------------------------------------------------------------- *)

let test_acl_only () =
  let acl = Thc_sharedmem.Acl.only 1 in
  Alcotest.(check bool) "owner allowed" true
    (Thc_sharedmem.Acl.allows acl ~pid:1 ~op:"write");
  Alcotest.(check bool) "other denied" false
    (Thc_sharedmem.Acl.allows acl ~pid:2 ~op:"write")

let test_acl_members () =
  let acl = Thc_sharedmem.Acl.members [ 0; 2 ] in
  Alcotest.(check bool) "member" true (Thc_sharedmem.Acl.allows acl ~pid:2 ~op:"x");
  Alcotest.(check bool) "non-member" false (Thc_sharedmem.Acl.allows acl ~pid:1 ~op:"x")

let test_acl_any () =
  Alcotest.(check bool) "anyone" true
    (Thc_sharedmem.Acl.allows Thc_sharedmem.Acl.any ~pid:3 ~op:"x")

let test_acl_pred_sees_op () =
  let acl = Thc_sharedmem.Acl.pred (fun ~pid:_ ~op -> String.equal op "read") in
  Alcotest.(check bool) "read ok" true (Thc_sharedmem.Acl.allows acl ~pid:0 ~op:"read");
  Alcotest.(check bool) "write denied" false
    (Thc_sharedmem.Acl.allows acl ~pid:0 ~op:"write")

let test_acl_enforce () =
  let k = keyring () in
  let acl = Thc_sharedmem.Acl.only 1 in
  Alcotest.(check int) "enforce returns authenticated pid" 1
    (Thc_sharedmem.Acl.enforce acl ~ident:(ident k 1) ~op:"w");
  match Thc_sharedmem.Acl.enforce acl ~ident:(ident k 2) ~op:"w" with
  | _ -> Alcotest.fail "expected violation"
  | exception Thc_sharedmem.Acl.Violation _ -> ()

(* --- SWMR ---------------------------------------------------------------------- *)

let test_swmr_owner_writes () =
  let k = keyring () in
  let r = Thc_sharedmem.Swmr.create ~owner:0 ~init:"initial" in
  Alcotest.(check string) "initial readable" "initial" (Thc_sharedmem.Swmr.read r);
  Thc_sharedmem.Swmr.write r ~ident:(ident k 0) "updated";
  Alcotest.(check string) "updated" "updated" (Thc_sharedmem.Swmr.read r);
  Alcotest.(check int) "write count" 1 (Thc_sharedmem.Swmr.write_count r)

let test_swmr_non_owner_rejected () =
  let k = keyring () in
  let r = Thc_sharedmem.Swmr.create ~owner:0 ~init:0 in
  match Thc_sharedmem.Swmr.write r ~ident:(ident k 1) 1 with
  | () -> Alcotest.fail "non-owner write accepted"
  | exception Thc_sharedmem.Acl.Violation _ ->
    Alcotest.(check int) "value unchanged" 0 (Thc_sharedmem.Swmr.read r)

let test_swmr_log_append_order () =
  let k = keyring () in
  let l = Thc_sharedmem.Swmr.create_log ~owner:2 in
  List.iter (Thc_sharedmem.Swmr.append l ~ident:(ident k 2)) [ "a"; "b"; "c" ];
  Alcotest.(check (list string)) "entries oldest first" [ "a"; "b"; "c" ]
    (Thc_sharedmem.Swmr.entries l)

let test_swmr_array_layout () =
  let a = Thc_sharedmem.Swmr.array ~n:3 ~init:(fun i -> i * 10) in
  Alcotest.(check int) "owners by index" 2 (Thc_sharedmem.Swmr.owner a.(2));
  Alcotest.(check int) "per-slot init" 20 (Thc_sharedmem.Swmr.read a.(2))

let prop_swmr_log_preserves_sequence =
  QCheck.Test.make ~name:"log preserves the append sequence" ~count:200
    QCheck.(list small_string)
    (fun entries ->
      let k = keyring () in
      let l = Thc_sharedmem.Swmr.create_log ~owner:1 in
      List.iter (Thc_sharedmem.Swmr.append l ~ident:(ident k 1)) entries;
      Thc_sharedmem.Swmr.entries l = entries)

let test_log_array_non_owner_append () =
  let k = keyring () in
  let a = Thc_sharedmem.Swmr.log_array ~n:3 in
  Thc_sharedmem.Swmr.append a.(1) ~ident:(ident k 1) "mine";
  match Thc_sharedmem.Swmr.append a.(1) ~ident:(ident k 2) "forged" with
  | () -> Alcotest.fail "non-owner append accepted"
  | exception Thc_sharedmem.Acl.Violation _ ->
    Alcotest.(check (list string)) "register untouched" [ "mine" ]
      (Thc_sharedmem.Swmr.entries a.(1))

let test_swmr_write_count_monotone () =
  let k = keyring () in
  let l = Thc_sharedmem.Swmr.create_log ~owner:0 in
  let counts = ref [ Thc_sharedmem.Swmr.write_count l ] in
  let tick () = counts := Thc_sharedmem.Swmr.write_count l :: !counts in
  Thc_sharedmem.Swmr.append l ~ident:(ident k 0) "a";
  tick ();
  (* A denied append must not tick the linearization counter. *)
  (try Thc_sharedmem.Swmr.append l ~ident:(ident k 3) "x"
   with Thc_sharedmem.Acl.Violation _ -> ());
  tick ();
  Thc_sharedmem.Swmr.write l ~ident:(ident k 0) [];
  tick ();
  Thc_sharedmem.Swmr.append l ~ident:(ident k 0) "b";
  tick ();
  Alcotest.(check (list int)) "one tick per successful op, denial ticks none"
    [ 3; 2; 1; 1; 0 ] !counts

let test_log_array_interleaved_oldest_first () =
  let k = keyring () in
  let a = Thc_sharedmem.Swmr.log_array ~n:2 in
  (* Interleave appends across owners: each register sees only its own
     stream, in order, oldest first. *)
  List.iter
    (fun (owner, v) -> Thc_sharedmem.Swmr.append a.(owner) ~ident:(ident k owner) v)
    [ (0, "a0"); (1, "b0"); (0, "a1"); (1, "b1"); (0, "a2") ];
  Alcotest.(check (list string)) "owner 0 stream" [ "a0"; "a1"; "a2" ]
    (Thc_sharedmem.Swmr.entries a.(0));
  Alcotest.(check (list string)) "owner 1 stream" [ "b0"; "b1" ]
    (Thc_sharedmem.Swmr.entries a.(1))

let test_swmr_ledger_accounting () =
  let k = keyring () in
  let a = Thc_sharedmem.Swmr.log_array ~n:2 in
  let ledger = Thc_obsv.Ledger.create () in
  Thc_sharedmem.Swmr.attach_ledger_all a ledger;
  Thc_sharedmem.Swmr.append a.(0) ~ident:(ident k 0) "x";
  Thc_sharedmem.Swmr.append a.(0) ~ident:(ident k 0) "y";
  ignore (Thc_sharedmem.Swmr.read a.(0));
  ignore (Thc_sharedmem.Swmr.read a.(1));
  ignore (Thc_sharedmem.Swmr.read a.(1));
  ignore (Thc_sharedmem.Swmr.read a.(1));
  Thc_sharedmem.Swmr.write a.(1) ~ident:(ident k 1) [ "w" ];
  Alcotest.(check int) "appends charged" 2
    (Thc_obsv.Ledger.count ledger "swmr.append");
  Alcotest.(check int) "reads charged" 4
    (Thc_obsv.Ledger.count ledger "swmr.read");
  Alcotest.(check int) "writes charged" 1
    (Thc_obsv.Ledger.count ledger "swmr.write");
  Alcotest.(check int) "no rejections yet" 0 (Thc_obsv.Ledger.rejections ledger)

let test_swmr_ledger_denials_are_rejections () =
  let k = keyring () in
  let a = Thc_sharedmem.Swmr.log_array ~n:2 in
  let ledger = Thc_obsv.Ledger.create () in
  Thc_sharedmem.Swmr.attach_ledger_all a ledger;
  (try Thc_sharedmem.Swmr.append a.(0) ~ident:(ident k 1) "forged"
   with Thc_sharedmem.Acl.Violation _ -> ());
  (try Thc_sharedmem.Swmr.write a.(1) ~ident:(ident k 0) []
   with Thc_sharedmem.Acl.Violation _ -> ());
  Alcotest.(check int) "append denial labelled" 1
    (Thc_obsv.Ledger.count ledger "swmr.append_denied");
  Alcotest.(check int) "write denial labelled" 1
    (Thc_obsv.Ledger.count ledger "swmr.write_denied");
  Alcotest.(check int) "denials count as rejections" 2
    (Thc_obsv.Ledger.rejections ledger);
  Alcotest.(check int) "nothing charged as a successful op" 0
    (Thc_obsv.Ledger.count ledger "swmr.append"
    + Thc_obsv.Ledger.count ledger "swmr.write")

(* --- sticky ---------------------------------------------------------------------- *)

let test_sticky_first_write_wins () =
  let k = keyring () in
  let s = Thc_sharedmem.Sticky.create () in
  Alcotest.(check bool) "starts unset" false (Thc_sharedmem.Sticky.is_set s);
  (match Thc_sharedmem.Sticky.set s ~ident:(ident k 0) "first" with
  | `Set -> ()
  | `Already -> Alcotest.fail "fresh set reported Already");
  (match Thc_sharedmem.Sticky.set s ~ident:(ident k 1) "second" with
  | `Already -> ()
  | `Set -> Alcotest.fail "second set accepted");
  Alcotest.(check (option string)) "value stuck" (Some "first")
    (Thc_sharedmem.Sticky.get s)

let test_sticky_acl () =
  let k = keyring () in
  let s = Thc_sharedmem.Sticky.create ~write_acl:(Thc_sharedmem.Acl.only 2) () in
  (match Thc_sharedmem.Sticky.set s ~ident:(ident k 0) "x" with
  | _ -> Alcotest.fail "ACL not enforced"
  | exception Thc_sharedmem.Acl.Violation _ -> ());
  match Thc_sharedmem.Sticky.set s ~ident:(ident k 2) "x" with
  | `Set -> ()
  | `Already -> Alcotest.fail "owner write failed"

(* --- PEATS ---------------------------------------------------------------------- *)

let owned_space () =
  Thc_sharedmem.Peats.create ~policy:Thc_sharedmem.Peats.owned_field_policy

let test_peats_out_rd () =
  let k = keyring () in
  let s = owned_space () in
  Thc_sharedmem.Peats.out s ~ident:(ident k 1) [| "1"; "r1"; "hello" |];
  Alcotest.(check int) "size" 1 (Thc_sharedmem.Peats.size s);
  match
    Thc_sharedmem.Peats.rd s ~ident:(ident k 2) [| Some "1"; None; None |]
  with
  | Some [| "1"; "r1"; "hello" |] -> ()
  | Some _ | None -> Alcotest.fail "rd did not find the tuple"

let test_peats_owner_policy () =
  let k = keyring () in
  let s = owned_space () in
  (* p2 cannot insert a tuple claiming to be p1's. *)
  match Thc_sharedmem.Peats.out s ~ident:(ident k 2) [| "1"; "r1"; "spoof" |] with
  | () -> Alcotest.fail "spoofed owner accepted"
  | exception Thc_sharedmem.Acl.Violation _ -> ()

let test_peats_inp_denied_by_owner_policy () =
  let k = keyring () in
  let s = owned_space () in
  Thc_sharedmem.Peats.out s ~ident:(ident k 1) [| "1"; "r1"; "x" |];
  match Thc_sharedmem.Peats.inp s ~ident:(ident k 1) [| Some "1"; None; None |] with
  | _ -> Alcotest.fail "removal should be denied"
  | exception Thc_sharedmem.Acl.Violation _ -> ()

let test_peats_rd_all_order () =
  let k = keyring () in
  let s = owned_space () in
  Thc_sharedmem.Peats.out s ~ident:(ident k 1) [| "1"; "r1"; "a" |];
  Thc_sharedmem.Peats.out s ~ident:(ident k 1) [| "1"; "r2"; "b" |];
  Thc_sharedmem.Peats.out s ~ident:(ident k 2) [| "2"; "r1"; "c" |];
  let mine =
    Thc_sharedmem.Peats.rd_all s ~ident:(ident k 3) [| Some "1"; None; None |]
  in
  Alcotest.(check int) "two of p1's tuples" 2 (List.length mine);
  (match mine with
  | [ [| _; r1; _ |]; [| _; r2; _ |] ] ->
    Alcotest.(check (pair string string)) "oldest first" ("r1", "r2") (r1, r2)
  | _ -> Alcotest.fail "unexpected rd_all shape")

let test_peats_append_once_policy () =
  let k = keyring () in
  let s =
    Thc_sharedmem.Peats.create ~policy:Thc_sharedmem.Peats.append_once_policy
  in
  Thc_sharedmem.Peats.out s ~ident:(ident k 1) [| "1"; "r1"; "v" |];
  (* Re-inserting at the same (owner, key) is a state-dependent denial. *)
  (match Thc_sharedmem.Peats.out s ~ident:(ident k 1) [| "1"; "r1"; "v2" |] with
  | () -> Alcotest.fail "duplicate key accepted"
  | exception Thc_sharedmem.Acl.Violation _ -> ());
  (* A different key is fine. *)
  Thc_sharedmem.Peats.out s ~ident:(ident k 1) [| "1"; "r2"; "v2" |];
  Alcotest.(check int) "two tuples" 2 (Thc_sharedmem.Peats.size s)

let test_peats_matching () =
  let t = [| "a"; "b"; "c" |] in
  Alcotest.(check bool) "wildcards" true
    (Thc_sharedmem.Peats.matches [| None; None; None |] t);
  Alcotest.(check bool) "exact" true
    (Thc_sharedmem.Peats.matches [| Some "a"; Some "b"; Some "c" |] t);
  Alcotest.(check bool) "mismatch" false
    (Thc_sharedmem.Peats.matches [| Some "x"; None; None |] t);
  Alcotest.(check bool) "arity" false (Thc_sharedmem.Peats.matches [| None |] t)

let test_peats_inp_removes_oldest () =
  let k = keyring () in
  let s =
    Thc_sharedmem.Peats.create ~policy:(fun ~pid:_ ~op:_ ~space:_ -> true)
  in
  Thc_sharedmem.Peats.out s ~ident:(ident k 0) [| "0"; "1"; "old" |];
  Thc_sharedmem.Peats.out s ~ident:(ident k 0) [| "0"; "2"; "new" |];
  (match Thc_sharedmem.Peats.inp s ~ident:(ident k 0) [| Some "0"; None; None |] with
  | Some [| _; _; v |] -> Alcotest.(check string) "oldest removed" "old" v
  | Some _ | None -> Alcotest.fail "inp failed");
  Alcotest.(check int) "one left" 1 (Thc_sharedmem.Peats.size s)

let prop_peats_rd_finds_inserted =
  QCheck.Test.make ~name:"rd finds every inserted tuple by exact pattern"
    ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (pair small_string small_string))
    (fun fields ->
      let k = keyring () in
      let s =
        Thc_sharedmem.Peats.create ~policy:(fun ~pid:_ ~op:_ ~space:_ -> true)
      in
      List.iter
        (fun (a, b) -> Thc_sharedmem.Peats.out s ~ident:(ident k 0) [| a; b |])
        fields;
      List.for_all
        (fun (a, b) ->
          Thc_sharedmem.Peats.rd s ~ident:(ident k 1) [| Some a; Some b |]
          <> None)
        fields)

let () =
  Alcotest.run "thc_sharedmem"
    [
      ( "acl",
        [
          Alcotest.test_case "only" `Quick test_acl_only;
          Alcotest.test_case "members" `Quick test_acl_members;
          Alcotest.test_case "any" `Quick test_acl_any;
          Alcotest.test_case "pred sees op" `Quick test_acl_pred_sees_op;
          Alcotest.test_case "enforce" `Quick test_acl_enforce;
        ] );
      ( "swmr",
        [
          Alcotest.test_case "owner writes" `Quick test_swmr_owner_writes;
          Alcotest.test_case "non-owner rejected" `Quick test_swmr_non_owner_rejected;
          Alcotest.test_case "log order" `Quick test_swmr_log_append_order;
          Alcotest.test_case "array layout" `Quick test_swmr_array_layout;
          Alcotest.test_case "log_array non-owner append"
            `Quick test_log_array_non_owner_append;
          Alcotest.test_case "write_count monotone"
            `Quick test_swmr_write_count_monotone;
          Alcotest.test_case "interleaved logs oldest first"
            `Quick test_log_array_interleaved_oldest_first;
          Alcotest.test_case "ledger accounting" `Quick test_swmr_ledger_accounting;
          Alcotest.test_case "ledger denials"
            `Quick test_swmr_ledger_denials_are_rejections;
          qcheck prop_swmr_log_preserves_sequence;
        ] );
      ( "sticky",
        [
          Alcotest.test_case "first write wins" `Quick test_sticky_first_write_wins;
          Alcotest.test_case "acl" `Quick test_sticky_acl;
        ] );
      ( "peats",
        [
          Alcotest.test_case "out/rd" `Quick test_peats_out_rd;
          Alcotest.test_case "owner policy" `Quick test_peats_owner_policy;
          Alcotest.test_case "inp denied" `Quick test_peats_inp_denied_by_owner_policy;
          Alcotest.test_case "rd_all order" `Quick test_peats_rd_all_order;
          Alcotest.test_case "append-once policy" `Quick test_peats_append_once_policy;
          Alcotest.test_case "matching" `Quick test_peats_matching;
          Alcotest.test_case "inp removes oldest" `Quick test_peats_inp_removes_oldest;
          qcheck prop_peats_rd_finds_inserted;
        ] );
    ]
