(* Tests for the workload subsystem: schedule determinism, the statistical
   shape of the generators, the closed-loop client, and the loadtest
   runner's export round trip. *)

module W = Thc_workload.Workload
module L = Thc_workload.Loadtest
module Zipf = Thc_workload.Zipf

let spec ?(clients = 4) ?(requests_per_client = 50)
    ?(arrival = W.Open_poisson { rate_rps = 500.0 })
    ?(keys = W.Keys_zipf { keys = 32; theta = 0.99 }) () =
  { W.clients; requests_per_client; arrival; keys; mix = W.default_mix }

(* --- determinism ------------------------------------------------------------ *)

let test_plan_deterministic () =
  let s = spec () in
  for client = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "client %d: same seed, same plan" client)
      true
      (W.plan s ~seed:7L ~client = W.plan s ~seed:7L ~client)
  done;
  Alcotest.(check bool) "different seeds diverge" true
    (W.plan s ~seed:7L ~client:0 <> W.plan s ~seed:8L ~client:0);
  Alcotest.(check bool) "different clients diverge" true
    (W.plan s ~seed:7L ~client:0 <> W.plan s ~seed:7L ~client:1)

let test_ops_independent_of_arrival () =
  (* The op stream must not move when only the pacing changes — otherwise a
     rate sweep would silently also change the workload content. *)
  let base = spec () in
  let ops arrival = W.ops { base with W.arrival } ~seed:11L ~client:2 in
  let reference = ops (W.Open_poisson { rate_rps = 500.0 }) in
  Alcotest.(check bool) "uniform pacing, same ops" true
    (ops (W.Open_uniform { rate_rps = 50.0 }) = reference);
  Alcotest.(check bool) "closed loop, same ops" true
    (ops (W.Closed { window = 3; think_us = 100L }) = reference)

let test_plan_shape () =
  let s = spec ~requests_per_client:20 () in
  match W.plan s ~seed:3L ~client:1 with
  | None -> Alcotest.fail "open-loop spec must yield a plan"
  | Some plan ->
    Alcotest.(check int) "plan length" 20 (List.length plan);
    let times = List.map fst plan in
    Alcotest.(check bool) "send times strictly ascending" true
      (List.for_all2
         (fun a b -> Int64.compare a b < 0)
         (List.filteri (fun i _ -> i < 19) times)
         (List.tl times));
    Alcotest.(check bool) "closed loop has no plan" true
      (W.plan { s with W.arrival = W.Closed { window = 2; think_us = 0L } }
         ~seed:3L ~client:1
      = None)

(* --- statistical shape ------------------------------------------------------ *)

let test_poisson_mean_within_tolerance () =
  let s =
    spec ~clients:2 ~requests_per_client:2000
      ~arrival:(W.Open_poisson { rate_rps = 1000.0 })
      ()
  in
  match W.arrival_times s ~seed:5L ~client:0 with
  | None -> Alcotest.fail "poisson spec must yield arrival times"
  | Some times ->
    let last = List.nth times (List.length times - 1) in
    let mean_gap = Int64.to_float last /. float_of_int (List.length times) in
    let expected = W.mean_gap_us s ~rate_rps:1000.0 in
    let err = Float.abs (mean_gap -. expected) /. expected in
    Alcotest.(check bool)
      (Printf.sprintf "mean gap %.0fµs within 10%% of %.0fµs" mean_gap expected)
      true (err < 0.10)

let zipf_counts ~n ~theta ~samples =
  let z = Zipf.create ~n ~theta in
  let rng = Thc_util.Rng.create 13L in
  let counts = Array.make n 0 in
  for _ = 1 to samples do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  counts

let test_zipf_rank_frequency_monotone () =
  let counts = zipf_counts ~n:16 ~theta:1.0 ~samples:40_000 in
  (* Compare well-separated ranks so sampling noise cannot flip the order;
     the distribution itself is strictly decreasing in rank. *)
  Alcotest.(check bool) "rank 0 beats rank 3" true (counts.(0) > counts.(3));
  Alcotest.(check bool) "rank 3 beats rank 8" true (counts.(3) > counts.(8));
  Alcotest.(check bool) "rank 8 beats rank 15" true (counts.(8) > counts.(15));
  Alcotest.(check bool) "head is heavy" true
    (counts.(0) > 4 * counts.(15))

let test_zipf_theta_zero_is_uniform () =
  let counts = zipf_counts ~n:8 ~theta:0.0 ~samples:40_000 in
  let mn = Array.fold_left min max_int counts in
  let mx = Array.fold_left max 0 counts in
  Alcotest.(check bool)
    (Printf.sprintf "uniform spread (min %d, max %d)" mn mx)
    true
    (float_of_int mx /. float_of_int mn < 1.15)

let test_spec_validation () =
  let bad s = try W.validate s; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero clients rejected" true
    (bad { (spec ()) with W.clients = 0 });
  Alcotest.(check bool) "zero rate rejected" true
    (bad { (spec ()) with W.arrival = W.Open_poisson { rate_rps = 0.0 } });
  Alcotest.(check bool) "zero window rejected" true
    (bad { (spec ()) with W.arrival = W.Closed { window = 0; think_us = 0L } });
  Alcotest.(check bool) "all-zero mix rejected" true
    (bad { (spec ()) with W.mix = { gets = 0; puts = 0; incrs = 0 } })

(* --- loadtest runner -------------------------------------------------------- *)

let point ?(protocol = L.Minbft) ?(batch = 1)
    ?(arrival = W.Open_poisson { rate_rps = 800.0 }) () =
  {
    L.protocol;
    f = 1;
    batch;
    seed = 41L;
    delay = Thc_sim.Delay.Uniform (50L, 500L);
    network = None;
    spec = spec ~clients:3 ~requests_per_client:10 ~arrival ();
  }

let test_closed_loop_completes () =
  let r =
    L.run_point
      (point ~arrival:(W.Closed { window = 2; think_us = 500L }) ())
  in
  Alcotest.(check int) "all requests completed" r.L.offered r.L.completed;
  Alcotest.(check int) "no safety violations" 0 r.L.safety_violations;
  Alcotest.(check bool) "positive throughput" true (r.L.throughput_rps > 0.0)

let test_run_point_deterministic () =
  let a = L.run_point (point ()) and b = L.run_point (point ()) in
  Alcotest.(check bool) "identical results" true (a = b);
  Alcotest.(check string) "identical export bytes"
    (L.export ~seed:41L [ a ])
    (L.export ~seed:41L [ b ])

let test_ubft_point_completes () =
  let r = L.run_point (point ~protocol:L.Ubft ()) in
  Alcotest.(check int) "all requests completed" r.L.offered r.L.completed;
  Alcotest.(check int) "no safety violations" 0 r.L.safety_violations;
  Alcotest.(check bool) "register ops charged" true
    (r.L.trusted_per_request > 0.0)

let test_ubft_point_deterministic () =
  let run () = L.run_point (point ~protocol:L.Ubft ()) in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical results" true (a = b);
  Alcotest.(check string) "identical export bytes"
    (L.export ~seed:41L [ a ])
    (L.export ~seed:41L [ b ])

let test_batching_amortizes () =
  let b1 = L.run_point (point ~batch:1 ())
  and b4 = L.run_point (point ~batch:4 ()) in
  Alcotest.(check int) "batch 1 completes" b1.L.offered b1.L.completed;
  Alcotest.(check int) "batch 4 completes" b4.L.offered b4.L.completed;
  Alcotest.(check bool)
    (Printf.sprintf "trusted/req falls (%.2f < %.2f)" b4.L.trusted_per_request
       b1.L.trusted_per_request)
    true
    (b4.L.trusted_per_request < b1.L.trusted_per_request)

let test_export_parse_roundtrip () =
  let results =
    L.sweep (point ())
      ~arrivals:
        [
          W.Open_poisson { rate_rps = 800.0 };
          W.Closed { window = 2; think_us = 0L };
        ]
      ~batches:[ 1; 4 ]
  in
  let text = L.export ~seed:41L results in
  match L.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok rows ->
    Alcotest.(check int) "row per point" (List.length results)
      (List.length rows);
    List.iter2
      (fun (r : L.result) (row : L.row) ->
        Alcotest.(check string) "protocol survives"
          (L.protocol_name r.L.point.L.protocol)
          row.L.r_protocol;
        Alcotest.(check int) "batch survives" r.L.point.L.batch row.L.r_batch;
        Alcotest.(check int) "completed survives" r.L.completed
          row.L.r_completed;
        Alcotest.(check int) "commits survive" r.L.commits row.L.r_commits)
      results rows

let test_parse_rejects_garbage () =
  let reject = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty rejected" true (reject (L.parse ""));
  Alcotest.(check bool) "wrong header rejected" true
    (reject (L.parse "{\"type\":\"metrics\"}\n"));
  Alcotest.(check bool) "schema mismatch rejected" true
    (reject
       (L.parse "{\"type\":\"loadtest\",\"schema\":\"thc-loadtest/v9\"}\n"))

let test_parse_names_truncated_line () =
  (* A mid-file truncation — the tail of an interrupted export — must be a
     clean [Error] naming the offending line, not a silent drop and not an
     escaped exception. *)
  let results = L.sweep (point ()) ~arrivals:[ W.Open_poisson { rate_rps = 800.0 } ] ~batches:[ 1 ] in
  let text = L.export ~seed:41L results in
  let truncated = String.sub text 0 (String.length text - 20) in
  (match L.parse truncated with
  | Ok _ -> Alcotest.fail "truncated export parsed"
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error names a line (%s)" e)
      true
      (String.length e >= 5 && String.sub e 0 5 = "line "));
  (* a corrupt line in the middle, with valid lines after it *)
  let with_bad_middle =
    match String.split_on_char '\n' text with
    | header :: rest -> String.concat "\n" ((header :: [ "{\"type\":\"point\",\"protocol\"" ]) @ rest)
    | [] -> assert false
  in
  match L.parse with_bad_middle with
  | Ok _ -> Alcotest.fail "corrupt middle line parsed"
  | Error e ->
    Alcotest.(check bool) "names line 2" true
      (String.length e >= 7 && String.sub e 0 7 = "line 2:")

let () =
  Alcotest.run "thc_workload"
    [
      ( "determinism",
        [
          Alcotest.test_case "plan deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "ops independent of arrival" `Quick
            test_ops_independent_of_arrival;
          Alcotest.test_case "plan shape" `Quick test_plan_shape;
          Alcotest.test_case "run_point deterministic" `Quick
            test_run_point_deterministic;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "poisson mean" `Quick
            test_poisson_mean_within_tolerance;
          Alcotest.test_case "zipf monotone" `Quick
            test_zipf_rank_frequency_monotone;
          Alcotest.test_case "zipf theta=0 uniform" `Quick
            test_zipf_theta_zero_is_uniform;
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
        ] );
      ( "loadtest",
        [
          Alcotest.test_case "closed loop completes" `Quick
            test_closed_loop_completes;
          Alcotest.test_case "batching amortizes" `Quick test_batching_amortizes;
          Alcotest.test_case "ubft point completes" `Quick
            test_ubft_point_completes;
          Alcotest.test_case "ubft point deterministic" `Quick
            test_ubft_point_deterministic;
          Alcotest.test_case "export/parse roundtrip" `Quick
            test_export_parse_roundtrip;
          Alcotest.test_case "parse rejects garbage" `Quick
            test_parse_rejects_garbage;
          Alcotest.test_case "parse names truncated line" `Quick
            test_parse_names_truncated_line;
        ] );
    ]
