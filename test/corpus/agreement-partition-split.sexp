; Strong-validity agreement over lock-step rounds, partitioned across the
; first round's send instant: the cut side misses the concurrent proposals
; and decides differently — the synchrony assumption is load-bearing.
; Found by `thc explore --protocol agreement-partition`, shrunk to one event.
(repro
  (protocol agreement-partition)
  (seed 14)
  (expect (fail agreement validity))
  (script (adversary (horizon 10000) (events (2323 (partition (1 2 4)))))))
