; Real MinBFT under the same explorer: a replica crash at the fault bound
; plus a healed partition.  Expected clean — safe and live.
(repro
  (protocol minbft)
  (seed 17)
  (expect (pass))
  (script
    (adversary
      (horizon 200000)
      (events
        (30000 (crash 2))
        (60000 (partition (0) (1 2)))
        (90000 (heal))))))
