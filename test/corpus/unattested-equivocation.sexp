; The ablated protocol (MinBFT message flow over plain signatures, no
; trusted counters) forks with no adversary help at all: the equivocating
; leader alone splits the f+1 quorums.  Shrunk from a 3-event script.
(repro
  (protocol minbft-unattested)
  (seed 3)
  (expect (fail smr-safety))
  (script (adversary (horizon 1) (events))))
