; Algorithm 1 (SRB from unidirectional SWMR rounds) at its fault bound:
; two of five writers crash mid-run.  The register rounds bypass the
; message network, so crashes are the only faults that matter.
(repro
  (protocol srb-uni)
  (seed 11)
  (expect (pass))
  (script
    (adversary
      (horizon 100000)
      (events (20000 (crash 1)) (45000 (crash 4))))))
