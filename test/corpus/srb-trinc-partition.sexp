; Sequenced reliable broadcast from TrInc logs: a mid-run partition heals
; before the horizon; sequenced delivery must hold and totality must catch
; up after the heal.
(repro
  (protocol srb-trinc)
  (seed 7)
  (expect (pass))
  (script
    (adversary
      (horizon 400000)
      (events
        (50000 (partition (0 1) (2 3)))
        (150000 (heal))
        (200000 (crash 3))))))
